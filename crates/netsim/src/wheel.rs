//! Hierarchical calendar-queue (timing-wheel) event scheduler.
//!
//! Replaces the engine's `BinaryHeap` event queue. Dispatch order is
//! *identical* to a min-heap ordered by [`SchedKey`] — the `(at, seq)`
//! pair — so every golden snapshot and corpus replay stays byte-identical.
//! The win is constant-time scheduling for near-future events (the common
//! case: link delays and service times of a few microseconds) instead of
//! `O(log n)` sift costs, and recycled bucket buffers so the steady state
//! allocates nothing per event.
//!
//! # Layout
//!
//! Virtual time is quantized into 256 ns *ticks* (`at >> TICK_SHIFT`).
//! Four levels of 256 slots each cover deltas of up to 2^32 ticks
//! (~18 minutes of simulated time) from the cursor:
//!
//! | level | covers deltas of     | slot width   |
//! |-------|----------------------|--------------|
//! | 0     | < 2^8  ticks         | 1 tick       |
//! | 1     | < 2^16 ticks         | 2^8 ticks    |
//! | 2     | < 2^24 ticks         | 2^16 ticks   |
//! | 3     | < 2^32 ticks         | 2^24 ticks   |
//!
//! Events beyond the top span live in a `far` min-heap and are admitted
//! into the wheels once the cursor gets close enough. Events landing at or
//! before the cursor's tick (zero-delay self-sends, same-instant
//! insertions while a tick is being drained) go to a `spill` min-heap.
//!
//! # Determinism argument
//!
//! - An event is placed by its *delta* from the cursor at insertion time;
//!   the cursor never decreases, so a level-`l` slot only ever holds
//!   events of a single slot-window per rotation.
//! - `advance` jumps the cursor to the minimum "next due boundary" across
//!   all levels (bitmap scan). Because the jump target is the global
//!   minimum, the cursor never passes an occupied slot without draining
//!   it, and higher-level slots cascade exactly when the cursor enters
//!   their tick block (highest level first, so re-placed events land
//!   strictly below).
//! - A drained level-0 slot holds exactly one tick's events; they are
//!   sorted descending by `SchedKey` and popped from the back, while pops
//!   always compare against the spill heap's minimum. Since `seq` is
//!   unique, the order is a total order — identical to the reference heap.
//!
//! [`ReferenceHeap`] is the binary-heap scheduler the wheel replaced, kept
//! as the executable ordering specification: equivalence tests and the
//! `crates/bench` microbench drive both off the same [`SchedKey`].

use neutrino_common::time::Instant;
use std::collections::BinaryHeap;

/// THE scheduler ordering: ascending `(at, seq)`, lexicographic via the
/// derived `Ord`. `seq` is assigned at scheduling time and unique, so the
/// order is total and ties at the same instant dispatch in scheduling
/// order on every run. Both [`Wheel`] and [`ReferenceHeap`] (and nothing
/// else) define dispatch order from this single derive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SchedKey {
    /// Virtual time the event is due.
    pub at: Instant,
    /// Scheduling sequence number (tie-breaker; unique per simulation).
    pub seq: u64,
}

/// Heap entry inverting [`SchedKey`]'s ascending order so `BinaryHeap`'s
/// max-heap pops the smallest key first. The only ordering inversion in
/// the scheduler; it delegates straight to the `SchedKey` derive.
struct Min<T>(SchedKey, T);

impl<T> PartialEq for Min<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for Min<T> {}
impl<T> PartialOrd for Min<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Min<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0)
    }
}

/// Nanoseconds per tick, as a shift: 256 ns.
const TICK_SHIFT: u32 = 8;
/// Slot-index bits per level: 256 slots.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels.
const LEVELS: usize = 4;
/// Ticks covered by all levels together (deltas beyond this go to `far`).
const SPAN_TICKS: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// One wheel level: 256 buckets plus an occupancy bitmap for skip-scans.
struct Level<T> {
    slots: Vec<Vec<(SchedKey, T)>>,
    occupied: [u64; SLOTS / 64],
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; SLOTS / 64],
        }
    }

    #[inline]
    fn is_set(&self, slot: usize) -> bool {
        self.occupied[slot >> 6] & (1 << (slot & 63)) != 0
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1 << (slot & 63));
    }

    /// Smallest occupied slot index `>= from`, if any.
    fn first_set_at_or_after(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        let mut word = self.occupied[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= SLOTS / 64 {
                return None;
            }
            word = self.occupied[w];
        }
    }
}

/// The hierarchical timing-wheel scheduler. See the module docs for the
/// layout and the determinism argument.
pub struct Wheel<T> {
    /// Current tick: every event at a tick `< cursor` has been dispatched
    /// or moved to `current`/`spill`; wheel slots only hold ticks
    /// `> cursor` (the cursor's own tick is drained on arrival).
    cursor: u64,
    levels: Vec<Level<T>>,
    /// The activated tick's events, sorted descending by key (pop from the
    /// back = smallest first). Swapped wholesale with level-0 buckets so
    /// buffers recycle.
    current: Vec<(SchedKey, T)>,
    /// Events due at or before the cursor's tick: zero-delay sends and
    /// insertions landing mid-drain. Always dispatch-comparable against
    /// `current` by full key.
    spill: BinaryHeap<Min<T>>,
    /// Events beyond the top-level span; admitted as the cursor approaches.
    far: BinaryHeap<Min<T>>,
    /// Events currently resident in level slots.
    in_wheels: usize,
    len: usize,
    max_depth: usize,
}

impl<T> Default for Wheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Wheel<T> {
    /// An empty scheduler with the cursor at tick zero.
    pub fn new() -> Self {
        Wheel {
            cursor: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            current: Vec::new(),
            spill: BinaryHeap::new(),
            far: BinaryHeap::new(),
            in_wheels: 0,
            len: 0,
            max_depth: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak number of simultaneously scheduled events.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Schedules an event.
    pub fn push(&mut self, key: SchedKey, item: T) {
        self.len += 1;
        if self.len > self.max_depth {
            self.max_depth = self.len;
        }
        self.place(key, item);
    }

    /// Key of the next event to dispatch (advances internal bookkeeping,
    /// removes nothing).
    pub fn peek_key(&mut self) -> Option<SchedKey> {
        self.ensure_front();
        match (self.current.last(), self.spill.peek()) {
            (Some(c), Some(s)) => Some(if s.0 < c.0 { s.0 } else { c.0 }),
            (Some(c), None) => Some(c.0),
            (None, Some(s)) => Some(s.0),
            (None, None) => None,
        }
    }

    /// Removes and returns the smallest-keyed event.
    pub fn pop(&mut self) -> Option<(SchedKey, T)> {
        self.ensure_front();
        let take_spill = match (self.current.last(), self.spill.peek()) {
            (Some(c), Some(s)) => s.0 < c.0,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_spill {
            self.spill.pop().map(|Min(k, v)| (k, v))
        } else {
            self.current.pop()
        }
    }

    /// Key of the earliest scheduled event without advancing anything —
    /// a read-only scan for harnesses that probe between `run_until`
    /// segments. Each level's earliest event lives in its cyclically-first
    /// occupied slot (successive slot windows are disjoint and
    /// increasing), so one slot per level is scanned.
    pub fn min_key(&self) -> Option<SchedKey> {
        let mut best: Option<SchedKey> = None;
        let mut fold = |k: SchedKey| {
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        };
        if let Some((k, _)) = self.current.last() {
            fold(*k);
        }
        if let Some(Min(k, _)) = self.spill.peek() {
            fold(*k);
        }
        if let Some(Min(k, _)) = self.far.peek() {
            fold(*k);
        }
        for l in 0..LEVELS {
            if let Some((boundary, wrapped)) = self.next_candidate(l) {
                let shift = LEVEL_BITS * l as u32;
                let slot = ((boundary >> shift) & (SLOTS as u64 - 1)) as usize;
                for (k, _) in &self.levels[l].slots[slot] {
                    fold(*k);
                }
                if !wrapped {
                    // Every event in this slot's window precedes anything a
                    // higher level can hold (see next_candidate).
                    break;
                }
            }
        }
        best
    }

    /// Routes an event to its home: spill (due now or past), a wheel level
    /// picked by delta, or the far heap. Shared by `push`, cascades, and
    /// far admission; does not touch `len`/`max_depth`.
    fn place(&mut self, key: SchedKey, item: T) {
        let k = key.at.as_nanos() >> TICK_SHIFT;
        if k <= self.cursor {
            self.spill.push(Min(key, item));
            return;
        }
        let delta = k - self.cursor;
        if delta >= SPAN_TICKS {
            self.far.push(Min(key, item));
            return;
        }
        // delta >= 1 here: level = highest set bit / LEVEL_BITS.
        let level = ((63 - delta.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((k >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let lv = &mut self.levels[level];
        lv.slots[slot].push((key, item));
        lv.set(slot);
        self.in_wheels += 1;
    }

    /// Makes the next event poppable from `current`/`spill` if any exists.
    fn ensure_front(&mut self) {
        if self.current.is_empty() && self.spill.is_empty() && self.len > 0 {
            self.advance();
        }
    }

    /// Next due boundary tick for a level: the cyclically-first occupied
    /// slot after the cursor's position, mapped to the tick where its
    /// events become due (for level 0 that is the events' exact tick;
    /// wrapped slots are due one rotation later). The boolean is `true`
    /// for a wrapped candidate.
    ///
    /// A **non-wrapped** candidate at level `l` dominates every candidate
    /// at levels above `l`: it lies inside the cursor's current level-`l`
    /// rotation, while a higher level's earliest possible candidate starts
    /// at the *next* level-(`l`+1) slot boundary — exactly where this
    /// rotation ends. Scans over levels in ascending order may therefore
    /// stop at the first non-wrapped hit.
    fn next_candidate(&self, l: usize) -> Option<(u64, bool)> {
        let lv = &self.levels[l];
        let shift = LEVEL_BITS * l as u32;
        let pos = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as usize;
        let rotation = 1u64 << (shift + LEVEL_BITS);
        let base = self.cursor & !(rotation - 1);
        if pos + 1 < SLOTS {
            if let Some(s) = lv.first_set_at_or_after(pos + 1) {
                return Some((base + ((s as u64) << shift), false));
            }
        }
        if let Some(s) = lv.first_set_at_or_after(0) {
            if s <= pos {
                return Some((base + rotation + ((s as u64) << shift), true));
            }
        }
        None
    }

    /// Drains a level slot, re-placing each event relative to the new
    /// cursor. Re-placed events land strictly below `level` (or in spill
    /// when due exactly now). The emptied buffer keeps its capacity.
    fn cascade(&mut self, level: usize, slot: usize) {
        if !self.levels[level].is_set(slot) {
            return;
        }
        self.levels[level].clear(slot);
        let mut drained = std::mem::take(&mut self.levels[level].slots[slot]);
        self.in_wheels -= drained.len();
        for (key, item) in drained.drain(..) {
            self.place(key, item);
        }
        self.levels[level].slots[slot] = drained;
    }

    /// Advances the cursor to the next non-empty tick and activates it.
    /// Precondition: `current` and `spill` empty, `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty() && self.spill.is_empty());
        loop {
            self.admit_far();
            let mut best: Option<u64> = None;
            for l in 0..LEVELS {
                if let Some((n, wrapped)) = self.next_candidate(l) {
                    if best.is_none_or(|b| n < b) {
                        best = Some(n);
                    }
                    if !wrapped {
                        // Dominates all higher levels (see next_candidate).
                        break;
                    }
                }
            }
            let Some(boundary) = best else {
                // Wheels empty. If far events remain, jump close enough to
                // admit the earliest and retry; otherwise nothing is left.
                let Some(Min(k, _)) = self.far.peek() else {
                    return;
                };
                debug_assert_eq!(self.in_wheels, 0);
                self.cursor = (k.at.as_nanos() >> TICK_SHIFT) - (SPAN_TICKS - 1);
                continue;
            };
            // Never jump past a far event's admission point: it could be
            // due before the wheels' next boundary once admitted. Strictly
            // before only — on equality the boundary path must run so the
            // occupied slot cascades/activates (a bare cursor move would
            // leave the slot's digit equal to the cursor's and
            // `next_candidate` would misread it as wrapped); the far event's
            // delta is then SPAN_TICKS - 1, admitted on the next iteration.
            if let Some(Min(k, _)) = self.far.peek() {
                let admit_at = (k.at.as_nanos() >> TICK_SHIFT) - (SPAN_TICKS - 1);
                if admit_at < boundary {
                    self.cursor = admit_at;
                    continue;
                }
            }
            self.cursor = boundary;
            // Entering new tick blocks: cascade every level whose block
            // starts here, highest first so events land strictly below.
            for l in (1..LEVELS).rev() {
                let block = 1u64 << (LEVEL_BITS * l as u32);
                if boundary & (block - 1) == 0 {
                    let slot = ((boundary >> (LEVEL_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
                    self.cascade(l, slot);
                }
            }
            // Activate the level-0 slot at the boundary: every entry in it
            // carries exactly this tick (see module docs), so the whole
            // bucket becomes `current`, sorted descending for back-pops.
            let s0 = (boundary & (SLOTS as u64 - 1)) as usize;
            if self.levels[0].is_set(s0) {
                self.levels[0].clear(s0);
                std::mem::swap(&mut self.levels[0].slots[s0], &mut self.current);
                self.in_wheels -= self.current.len();
                self.current.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
            }
            if !self.current.is_empty() || !self.spill.is_empty() {
                return;
            }
        }
    }

    /// Moves far events whose delta has shrunk below the top span into the
    /// wheels.
    fn admit_far(&mut self) {
        while let Some(Min(k, _)) = self.far.peek() {
            let tick = k.at.as_nanos() >> TICK_SHIFT;
            debug_assert!(tick > self.cursor, "far event behind the cursor");
            if tick - self.cursor >= SPAN_TICKS {
                break;
            }
            let Min(key, item) = self.far.pop().expect("peeked");
            self.place(key, item);
        }
    }
}

/// The binary-heap scheduler the wheel replaced, kept as the executable
/// ordering specification. Order-equivalence tests and the bench-crate
/// microbench run identical schedules through both; dispatch order must
/// match event-for-event.
pub struct ReferenceHeap<T> {
    heap: BinaryHeap<Min<T>>,
    max_depth: usize,
}

impl<T> Default for ReferenceHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReferenceHeap<T> {
    /// An empty reference scheduler.
    pub fn new() -> Self {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            max_depth: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peak number of simultaneously scheduled events.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Schedules an event.
    pub fn push(&mut self, key: SchedKey, item: T) {
        self.heap.push(Min(key, item));
        if self.heap.len() > self.max_depth {
            self.max_depth = self.heap.len();
        }
    }

    /// Key of the next event to dispatch.
    pub fn peek_key(&self) -> Option<SchedKey> {
        self.heap.peek().map(|m| m.0)
    }

    /// Removes and returns the smallest-keyed event.
    pub fn pop(&mut self) -> Option<(SchedKey, T)> {
        self.heap.pop().map(|Min(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at_ns: u64, seq: u64) -> SchedKey {
        SchedKey {
            at: Instant::from_nanos(at_ns),
            seq,
        }
    }

    /// Drains both schedulers fed the same pushes; orders must match.
    fn assert_equivalent(schedule: &[(u64, u64)]) {
        let mut wheel = Wheel::new();
        let mut heap = ReferenceHeap::new();
        for &(at, seq) in schedule {
            wheel.push(key(at, seq), seq);
            heap.push(key(at, seq), seq);
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "wheel diverged from reference heap");
            if w.is_none() {
                break;
            }
        }
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn dispatches_in_key_order() {
        assert_equivalent(&[(500, 0), (100, 1), (300, 2), (100, 3), (0, 4)]);
    }

    #[test]
    fn same_instant_ties_break_by_seq() {
        assert_equivalent(&[(1000, 5), (1000, 1), (1000, 3), (1000, 0)]);
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        // Beyond SPAN_TICKS << TICK_SHIFT = 2^40 ns (~18 min).
        assert_equivalent(&[
            (1 << 41, 0),
            (100, 1),
            ((1 << 41) + 7, 2),
            (1 << 45, 3),
            (u64::MAX >> 1, 4),
        ]);
    }

    #[test]
    fn far_admission_point_on_slot_boundary_still_cascades() {
        // Regression: a far event whose admission tick equals the next due
        // boundary. The clamp must not short-circuit past the boundary path,
        // or the occupied slot (digit == cursor pos) is misread as wrapped
        // and its events defer a full rotation behind later-keyed ones.
        // Tick 1000 lives in level-1 slot 3 (boundary tick 768); the far
        // event's admission point is exactly 768 + 2^32 - 1 - (2^32 - 1).
        let tick = |t: u64| t << TICK_SHIFT;
        assert_equivalent(&[
            (tick(1000), 0),
            (tick(40000), 1),
            (tick(768 + SPAN_TICKS - 1), 2),
        ]);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut wheel = Wheel::new();
        let mut heap = ReferenceHeap::new();
        // Simple deterministic mixed workload: pop one, push two at times
        // derived from the popped event (exercises mid-drain insertion).
        let mut seq = 0u64;
        for _ in 0..4 {
            wheel.push(key(seq * 777, seq), seq);
            heap.push(key(seq * 777, seq), seq);
            seq += 1;
        }
        let mut popped = 0;
        while popped < 200 {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w.map(|(k, _)| k), h.map(|(k, _)| k));
            let Some((k, _)) = w else { break };
            popped += 1;
            if popped < 60 {
                // zero-delay same-instant re-send + a short hop
                for bump in [0u64, 300, 65_536 * 256] {
                    let nk = key(k.at.as_nanos() + bump, seq);
                    wheel.push(nk, seq);
                    heap.push(nk, seq);
                    seq += 1;
                }
            }
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w.map(|(k, _)| k), h.map(|(k, _)| k));
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn min_key_is_read_only_and_correct() {
        let mut wheel = Wheel::new();
        assert_eq!(wheel.min_key(), None);
        for &(at, seq) in &[(1u64 << 41, 0u64), (90_000, 1), (70_000_000, 2), (256, 3)] {
            wheel.push(key(at, seq), seq);
        }
        // Before any pop has advanced the cursor.
        assert_eq!(wheel.min_key(), Some(key(256, 3)));
        let (k, _) = wheel.pop().unwrap();
        assert_eq!(k, key(256, 3));
        assert_eq!(wheel.min_key(), Some(key(90_000, 1)));
        assert_eq!(wheel.len(), 3);
    }

    #[test]
    fn pseudo_random_schedules_match_reference() {
        // splitmix64-driven schedules over several magnitude bands,
        // including duplicates of the same instant.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for band in [1_000u64, 300_000, 50_000_000, 1 << 42] {
            let mut schedule = Vec::new();
            for seq in 0..500u64 {
                let at = next() % band;
                schedule.push((at, seq));
                if seq % 7 == 0 {
                    schedule.push((at, seq + 10_000)); // same-instant tie
                }
            }
            assert_equivalent(&schedule);
        }
    }

    #[test]
    fn max_depth_tracks_peak() {
        let mut wheel = Wheel::new();
        for i in 0..10 {
            wheel.push(key(i * 100, i), i);
        }
        for _ in 0..5 {
            wheel.pop();
        }
        for i in 10..13 {
            wheel.push(key(i * 100, i), i);
        }
        assert_eq!(wheel.max_depth(), 10);
        assert_eq!(wheel.len(), 8);
    }
}
