//! The discrete-event engine.
//!
//! Each node is a multi-core FIFO queueing server running a [`Node`] state
//! machine. The engine pops time-ordered events; `Deliver` enqueues a
//! message at its destination, `JobComplete` runs the node's handler at
//! service completion (charging the declared service time), `Timer` runs
//! zero-cost internal work, `Crash`/`Recover` inject failures.
//!
//! Determinism: the event queue orders by `(time, sequence)` where the
//! sequence is assigned at scheduling time, so ties break identically on
//! every run.

use crate::links::{Delivery, Links};
use crate::stats::{NodeStats, SimStats};
use crate::wheel::{SchedKey, Wheel};
use neutrino_common::time::{Duration, Instant};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifies a node inside a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Sender id used for externally injected traffic.
    pub const EXTERNAL: NodeId = NodeId(u64::MAX);

    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "node-external")
        } else {
            write!(f, "node-{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What a node is asked to handle.
#[derive(Debug)]
pub enum NodeEvent<M> {
    /// A message finished service (the node now reacts to it).
    Message {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A timer set earlier fired.
    Timer {
        /// The id passed to [`Outbox::set_timer`].
        id: u64,
    },
    /// The node just recovered from a crash (state was NOT preserved by the
    /// engine; the node decides what recovery means).
    Recovered,
}

/// The only way a node affects the world: messages out and timers.
pub struct Outbox<M> {
    now: Instant,
    sends: Vec<(NodeId, M, Duration)>,
    timers: Vec<(Duration, u64)>,
}

impl<M> Outbox<M> {
    fn new(now: Instant) -> Self {
        Outbox {
            now,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Re-arms a recycled outbox: buffers are kept (already drained by
    /// `flush_outbox`), only the clock is reset.
    fn rearm(&mut self, now: Instant) {
        debug_assert!(self.sends.is_empty() && self.timers.is_empty());
        self.now = now;
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Sends a message; it leaves the node immediately and arrives after the
    /// link delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg, Duration::ZERO));
    }

    /// Sends a message after an extra local delay (e.g. modeling work done
    /// off the critical path).
    pub fn send_after(&mut self, to: NodeId, msg: M, extra: Duration) {
        self.sends.push((to, msg, extra));
    }

    /// Arms a timer that fires after `delay` with the given id.
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        self.timers.push((delay, id));
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new(Instant::ZERO)
    }
}

/// A delivery witness: `tap(from, to, &msg)` runs for every message
/// actually enqueued at an up node (after loss/partition/down filtering,
/// before service). See [`Sim::set_delivery_tap`].
pub type DeliveryTap<M> = Box<dyn FnMut(NodeId, NodeId, &M) + Send>;

/// A protocol state machine living at one node.
///
/// `Send` is required so the region-sharded engine ([`crate::shard`]) can
/// run shards on worker threads; nodes are only ever *moved* across
/// threads at window barriers, never shared, so `Sync` is not needed.
pub trait Node<M>: Any + Send {
    /// Service time charged for a message *before* [`Node::handle`] runs —
    /// the CPU the node burns parsing, processing, and building responses.
    /// Zero means the message is pure bookkeeping.
    fn service_time(&self, msg: &M) -> Duration;

    /// Reacts to an event. All effects go through the outbox.
    fn handle(&mut self, event: NodeEvent<M>, out: &mut Outbox<M>);

    /// Number of cores serving this node's queue.
    fn cores(&self) -> usize {
        1
    }

    /// Downcast support (retrieving results after a run).
    fn as_any(&mut self) -> &mut dyn Any;
}

pub(crate) enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    JobComplete { node: NodeId, epoch: u64, job: u64 },
    Timer { node: NodeId, id: u64, epoch: u64 },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

impl<M> EventKind<M> {
    /// The node whose shard must dispatch this event. `JobComplete`,
    /// `Timer`, `Crash` and `Recover` always target the node that owns
    /// them; only `Deliver` crosses shards.
    pub(crate) fn target(&self) -> NodeId {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::JobComplete { node, .. }
            | EventKind::Timer { node, .. }
            | EventKind::Crash { node }
            | EventKind::Recover { node } => *node,
        }
    }
}

struct NodeEntry<M> {
    id: NodeId,
    node: Box<dyn Node<M>>,
    queue: VecDeque<(NodeId, M, Instant)>,
    busy_cores: usize,
    /// In-flight jobs tagged by job id (multicore jobs finish out of
    /// order). At most `cores()` entries, so a linear scan beats hashing.
    running: Vec<(u64, NodeId, M)>,
    up: bool,
    epoch: u64,
    stats: NodeStats,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on processed events (guards against runaway loops).
    pub max_events: u64,
}

impl SimConfig {
    /// Events the cap allows per microsecond of simulated horizon. Real
    /// workloads in this repo stay under ~2 events/µs even at the highest
    /// figure rates, so 64 only trips on genuine feedback loops.
    const EVENTS_PER_US: u64 = 64;
    /// Fixed allowance so short horizons still permit startup chatter.
    const SLACK_EVENTS: u64 = 4_000_000;

    /// Derives the runaway-loop cap from the experiment's time horizon
    /// instead of one hard-wired constant.
    pub fn for_horizon(horizon: Duration) -> Self {
        let us = horizon.as_nanos() / 1_000;
        SimConfig {
            max_events: us
                .saturating_mul(Self::EVENTS_PER_US)
                .saturating_add(Self::SLACK_EVENTS),
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 2_000_000_000,
        }
    }
}

/// Raw node ids the dense index will allocate slots for. The id bands in
/// use (UE PoP 0, CTAs 1000+, CPFs 100_000+, UPFs 200_000+) stay far
/// below this; it only guards against accidentally indexing by a huge id.
const MAX_DENSE_ID: u64 = 1 << 24;

/// Slot sentinel meaning "no node registered at this raw id".
const NO_SLOT: u32 = u32::MAX;

/// Shard sentinel in the raw-id → shard map meaning "not registered
/// anywhere"; such targets dispatch locally (and count as unroutable
/// there), so the per-shard unroutable counters sum to the sequential
/// engine's count.
pub(crate) const NO_SHARD: u32 = u32::MAX;

/// First provisional sequence number handed out inside a sharded window.
/// Coordinator-assigned global sequences grow from zero and can never
/// reach this (the event budget trips first), so every event already
/// pending when a window opens wins equal-time ties against events pushed
/// *during* the window — exactly the sequential engine's push-order
/// tiebreak, where pending events were pushed earlier.
pub(crate) const PROVISIONAL_SEQ_BASE: u64 = 1 << 63;

/// One push made during a sharded window, recorded in push order so the
/// window coordinator can symbolically replay it (see [`crate::shard`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum PushRec {
    /// Entered this shard's own wheel under a provisional key
    /// (`at <= bound`, target owned locally).
    Local {
        /// Scheduled time.
        at: Instant,
    },
    /// Target owned locally but past the window bound; the event body sits
    /// in [`WindowOut::deferred`] awaiting a coordinator-assigned key.
    Deferred {
        /// Scheduled time.
        at: Instant,
    },
    /// Target owned by another shard; the event body sits in
    /// [`WindowOut::exports`] awaiting routing at the barrier.
    Export {
        /// Scheduled time.
        at: Instant,
        /// Destination shard.
        dest: u32,
    },
}

impl PushRec {
    pub(crate) fn at(&self) -> Instant {
        match self {
            PushRec::Local { at } | PushRec::Deferred { at } | PushRec::Export { at, .. } => *at,
        }
    }
}

/// One dispatched event's slice of the window log: the time it ran at and
/// how many entries it appended to [`WindowOut::pushes`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct DispatchRec {
    pub(crate) at: Instant,
    pub(crate) pushes: u32,
}

/// Everything a shard ships to the window coordinator at a barrier.
pub(crate) struct WindowOut<M> {
    /// Events dispatched this window, in dispatch order.
    pub(crate) dispatches: Vec<DispatchRec>,
    /// Pushes made this window, in push order, segmented by
    /// `dispatches[i].pushes`.
    pub(crate) pushes: Vec<PushRec>,
    /// Bodies of `PushRec::Deferred` pushes, in push order.
    pub(crate) deferred: Vec<(Instant, EventKind<M>)>,
    /// Bodies of `PushRec::Export` pushes, in push order.
    pub(crate) exports: Vec<(u32, Instant, EventKind<M>)>,
}

impl<M> Default for WindowOut<M> {
    fn default() -> Self {
        WindowOut {
            dispatches: Vec::new(),
            pushes: Vec::new(),
            deferred: Vec::new(),
            exports: Vec::new(),
        }
    }
}

/// Per-shard window state, installed once by [`crate::shard::ShardedSim`]
/// when it goes multi-shard. `None` on every sequential `Sim`, so the
/// sequential hot path pays exactly one predictable branch in `push`.
struct WindowState<M> {
    /// This shard's index.
    my_shard: u32,
    /// Raw node id → owning shard (`NO_SHARD` / out of range = local).
    /// Shared read-only with the coordinator and sibling shards; replaced
    /// wholesale when nodes are added.
    shard_of: Arc<Vec<u32>>,
    /// Inclusive bound of the window currently running.
    bound: Instant,
    /// Next provisional sequence (reset to [`PROVISIONAL_SEQ_BASE`] per
    /// window).
    prov_seq: u64,
    /// True only while `run_window` is on the stack.
    active: bool,
    out: WindowOut<M>,
}

/// The simulator.
pub struct Sim<M> {
    now: Instant,
    seq: u64,
    job_seq: u64,
    link_seq: u64,
    /// The calendar-queue scheduler; dispatch order is ascending
    /// [`SchedKey`] — see [`crate::wheel`] for the ordering definition.
    queue: Wheel<EventKind<M>>,
    /// Dense node slab; slots are assigned in `add_node` order.
    nodes: Vec<NodeEntry<M>>,
    /// Sparse raw-id → slot map (`NO_SLOT` = absent). Node ids are banded,
    /// not sequential, so a direct `Vec` index needs this indirection.
    slots: Vec<u32>,
    links: Links,
    config: SimConfig,
    events_processed: u64,
    /// Host time spent inside `run_until`, for events/sec reporting.
    wall: std::time::Duration,
    /// Heap allocations observed across `run_until` calls (zero unless a
    /// counting allocator reports into [`crate::alloc_count`]).
    allocs: u64,
    /// Fault-layer and routing counters (see [`SimStats`]).
    dropped_loss: u64,
    dropped_partition: u64,
    duplicated: u64,
    reordered: u64,
    dropped_unroutable: u64,
    /// Recycled outbox: send/timer buffers are reused across `handle`
    /// calls instead of being reallocated per event.
    scratch: Outbox<M>,
    /// Sharded-window interception state; `None` for every sequential
    /// engine (see [`WindowState`]).
    window: Option<Box<WindowState<M>>>,
    /// Chosen-mode bookkeeping (state-hash chains, delivery count);
    /// `None` until the first [`Sim::run_until_chosen`] call, so plain
    /// runs carry no instrumentation cost.
    choice: Option<Box<crate::choice::ChoiceState>>,
    /// Optional delivery witness (flow-coverage tooling): called for every
    /// message actually enqueued at an up node, after fault filtering and
    /// before service. `None` on plain runs, so the hot path pays exactly
    /// one branch.
    tap: Option<DeliveryTap<M>>,
}

impl<M: Clone + 'static> Sim<M> {
    /// Creates a simulator over the given link table.
    pub fn new(links: Links) -> Self {
        Self::with_config(links, SimConfig::default())
    }

    /// Creates a simulator with explicit config.
    pub fn with_config(links: Links, config: SimConfig) -> Self {
        Sim {
            now: Instant::ZERO,
            seq: 0,
            job_seq: 0,
            link_seq: 0,
            queue: Wheel::new(),
            nodes: Vec::new(),
            slots: Vec::new(),
            links,
            config,
            events_processed: 0,
            wall: std::time::Duration::ZERO,
            allocs: 0,
            dropped_loss: 0,
            dropped_partition: 0,
            duplicated: 0,
            reordered: 0,
            dropped_unroutable: 0,
            scratch: Outbox::default(),
            window: None,
            choice: None,
            tap: None,
        }
    }

    /// Installs a delivery witness: `tap(from, to, &msg)` runs for every
    /// message actually enqueued at an up node (after loss/partition/down
    /// filtering, before service). Used by `explore --flow-coverage` to
    /// record witnessed protocol-flow edges; plain runs never install one.
    pub fn set_delivery_tap(&mut self, tap: DeliveryTap<M>) {
        self.tap = Some(tap);
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Engine-level throughput counters for this simulation so far.
    pub fn sim_stats(&self) -> SimStats {
        SimStats {
            events_processed: self.events_processed,
            wall: self.wall,
            dropped_loss: self.dropped_loss,
            dropped_partition: self.dropped_partition,
            duplicated: self.duplicated,
            reordered: self.reordered,
            dropped_unroutable: self.dropped_unroutable,
            max_queue_depth: self
                .nodes
                .iter()
                .map(|n| n.stats.max_queue_depth)
                .max()
                .unwrap_or(0),
            max_sched_depth: self.queue.max_depth() as u64,
            allocs: self.allocs,
        }
    }

    /// Slot of `id` in the dense slab, if registered.
    #[inline]
    fn slot(&self, id: NodeId) -> Option<usize> {
        match self.slots.get(id.raw() as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    #[inline]
    fn entry_mut(&mut self, id: NodeId) -> Option<&mut NodeEntry<M>> {
        let slot = self.slot(id)?;
        Some(&mut self.nodes[slot])
    }

    /// Registers a node. Panics on duplicate ids.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn Node<M>>) {
        let raw = id.raw();
        assert!(
            raw < MAX_DENSE_ID,
            "node id {id} outside the dense-index range"
        );
        if self.slots.len() <= raw as usize {
            self.slots.resize(raw as usize + 1, NO_SLOT);
        }
        assert!(self.slots[raw as usize] == NO_SLOT, "duplicate node id {id}");
        self.slots[raw as usize] = self.nodes.len() as u32;
        self.nodes.push(NodeEntry {
            id,
            node,
            queue: VecDeque::new(),
            busy_cores: 0,
            running: Vec::new(),
            up: true,
            epoch: 0,
            stats: NodeStats::default(),
        });
    }

    /// Mutable access to the links table (topology changes mid-run).
    pub fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }

    fn push(&mut self, at: Instant, kind: EventKind<M>) {
        if self.window.is_some() {
            return self.push_windowed(at, kind);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(SchedKey { at, seq }, kind);
    }

    /// Window-mode push: classify by target shard and window bound, log
    /// the push for the coordinator's symbolic replay, and only enter the
    /// local wheel (under a provisional key) when the event both belongs
    /// here and falls inside the window.
    fn push_windowed(&mut self, at: Instant, kind: EventKind<M>) {
        let w = self.window.as_mut().expect("windowed push");
        debug_assert!(w.active, "push outside a window in sharded mode");
        let target = kind.target();
        let dest = w
            .shard_of
            .get(target.raw() as usize)
            .copied()
            .unwrap_or(NO_SHARD);
        let rec = if dest != NO_SHARD && dest != w.my_shard {
            w.out.exports.push((dest, at, kind));
            PushRec::Export { at, dest }
        } else if at > w.bound {
            w.out.deferred.push((at, kind));
            PushRec::Deferred { at }
        } else {
            let seq = w.prov_seq;
            w.prov_seq += 1;
            self.queue.push(SchedKey { at, seq }, kind);
            let w = self.window.as_mut().expect("windowed push");
            w.out.pushes.push(PushRec::Local { at });
            w.out
                .dispatches
                .last_mut()
                .expect("pushes only happen inside a dispatch")
                .pushes += 1;
            return;
        };
        w.out.pushes.push(rec);
        w.out
            .dispatches
            .last_mut()
            .expect("pushes only happen inside a dispatch")
            .pushes += 1;
    }

    /// Pushes an event under a caller-supplied key, bypassing both the
    /// local sequence counter and window classification. The shard
    /// coordinator uses this to deliver barrier-merged events (and
    /// pre-run injections) whose global sequence it assigned itself.
    pub(crate) fn push_keyed(&mut self, key: SchedKey, kind: EventKind<M>) {
        self.queue.push(key, kind);
    }

    /// Installs (or refreshes) window-mode interception; the engine now
    /// belongs to shard `my_shard` of a [`crate::shard::ShardedSim`]. The
    /// map is refreshed whenever nodes were added since the last run.
    pub(crate) fn set_window(&mut self, my_shard: u32, shard_of: Arc<Vec<u32>>) {
        match &mut self.window {
            Some(w) => {
                debug_assert!(!w.active, "map swap mid-window");
                w.my_shard = my_shard;
                w.shard_of = shard_of;
            }
            None => {
                self.window = Some(Box::new(WindowState {
                    my_shard,
                    shard_of,
                    bound: Instant::ZERO,
                    prov_seq: PROVISIONAL_SEQ_BASE,
                    active: false,
                    out: WindowOut::default(),
                }));
            }
        }
    }

    /// Runs one conservative window: dispatches every pending event with
    /// `at <= bound` (all of which are local by construction) and returns
    /// the push log + deferred/exported event bodies for the barrier.
    ///
    /// Unlike `run_until` this takes no wall-clock or allocation samples —
    /// the coordinator measures the whole sharded run once — and checks
    /// the event budget per event against the *global* budget, which
    /// guards a single shard caught in a zero-delay feedback loop; the
    /// cross-shard sum is checked by the coordinator at each barrier.
    pub(crate) fn run_window(&mut self, bound: Instant) -> WindowOut<M> {
        {
            let w = self.window.as_mut().expect("sharded mode");
            debug_assert!(!w.active, "window already running");
            debug_assert!(
                w.out.dispatches.is_empty()
                    && w.out.pushes.is_empty()
                    && w.out.deferred.is_empty()
                    && w.out.exports.is_empty(),
                "window buffers not drained"
            );
            w.bound = bound;
            w.prov_seq = PROVISIONAL_SEQ_BASE;
            w.active = true;
        }
        while let Some(key) = self.queue.peek_key() {
            if key.at > bound {
                break;
            }
            let (key, kind) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                self.panic_event_budget(key.at);
            }
            debug_assert!(key.at >= self.now, "time went backwards");
            self.now = key.at;
            self.window
                .as_mut()
                .expect("sharded mode")
                .out
                .dispatches
                .push(DispatchRec {
                    at: key.at,
                    pushes: 0,
                });
            self.dispatch(kind);
        }
        let w = self.window.as_mut().expect("sharded mode");
        w.active = false;
        std::mem::take(&mut w.out)
    }

    /// Injects a message from outside the simulated network, arriving at
    /// `to` at absolute time `at` (no link delay applied).
    pub fn inject_at(&mut self, at: Instant, to: NodeId, msg: M) {
        self.push(
            at,
            EventKind::Deliver {
                to,
                from: NodeId::EXTERNAL,
                msg,
            },
        );
    }

    /// Schedules a crash of `node` at `at`: its queue and in-flight work are
    /// discarded and later arrivals are dropped until recovery.
    pub fn crash_at(&mut self, at: Instant, node: NodeId) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at `at`.
    pub fn recover_at(&mut self, at: Instant, node: NodeId) {
        self.push(at, EventKind::Recover { node });
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.slot(node).map(|s| self.nodes[s].up).unwrap_or(false)
    }

    /// Statistics of a node.
    pub fn stats(&self, node: NodeId) -> Option<&NodeStats> {
        self.slot(node).map(|s| &self.nodes[s].stats)
    }

    /// Downcasts a node to retrieve results after (or during) a run.
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.entry_mut(id)?.node.as_any().downcast_mut::<T>()
    }

    /// Drains a borrowed outbox into the event queue, leaving its buffers
    /// empty for reuse. Every send consults the fault layer: the link
    /// sequence advances exactly once per send (fault draws use salted
    /// hashes of the same sequence), so a fault-free run schedules the
    /// identical event stream the pre-fault-layer engine did.
    fn flush_outbox(&mut self, from: NodeId, out: &mut Outbox<M>, epoch: u64) {
        let now = out.now;
        for (to, msg, extra) in out.sends.drain(..) {
            let sequence = self.link_seq;
            self.link_seq += 1;
            match self.links.plan_delivery(from, to, sequence, now) {
                Delivery::Lost => self.dropped_loss += 1,
                Delivery::Partitioned => self.dropped_partition += 1,
                Delivery::Deliver {
                    delay,
                    duplicate,
                    reordered,
                } => {
                    if reordered {
                        self.reordered += 1;
                    }
                    if let Some(dup_delay) = duplicate {
                        self.duplicated += 1;
                        self.push(
                            now + extra + dup_delay,
                            EventKind::Deliver {
                                to,
                                from,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.push(now + extra + delay, EventKind::Deliver { to, from, msg });
                }
            }
        }
        for (delay, id) in out.timers.drain(..) {
            self.push(
                now + delay,
                EventKind::Timer {
                    node: from,
                    id,
                    epoch,
                },
            );
        }
    }

    /// Runs `entry.node.handle(event)` through the recycled scratch outbox
    /// and flushes the effects. `slot` must be valid.
    fn handle_at(&mut self, slot: usize, event: NodeEvent<M>) {
        let mut out = std::mem::take(&mut self.scratch);
        out.rearm(self.now);
        let entry = &mut self.nodes[slot];
        entry.node.handle(event, &mut out);
        let (id, epoch) = (entry.id, entry.epoch);
        self.flush_outbox(id, &mut out, epoch);
        self.scratch = out;
    }

    fn try_start_jobs(&mut self, slot: usize) {
        loop {
            let entry = &mut self.nodes[slot];
            if !entry.up || entry.busy_cores >= entry.node.cores() || entry.queue.is_empty() {
                return;
            }
            let (from, msg, enq) = entry.queue.pop_front().expect("non-empty");
            let st = entry.node.service_time(&msg);
            entry.busy_cores += 1;
            entry.stats.total_wait += self.now.saturating_since(enq);
            entry.stats.busy += st;
            let job = self.job_seq;
            self.job_seq += 1;
            entry.running.push((job, from, msg));
            let (node, epoch) = (entry.id, entry.epoch);
            let at = self.now + st;
            self.push(at, EventKind::JobComplete { node, epoch, job });
        }
    }

    /// Dispatches one already-popped event at `self.now`. Shared between
    /// the sequential `run_until` loop and the sharded `run_window` loop
    /// so both paths run the identical per-event state machine.
    #[inline(always)]
    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                let slot = match self.slot(to) {
                    Some(s) => s,
                    None => {
                        // Unknown destination: count it — a misrouted
                        // message vanishing silently is undebuggable.
                        self.dropped_unroutable += 1;
                        return;
                    }
                };
                if !self.nodes[slot].up {
                    self.nodes[slot].stats.dropped_down += 1;
                    return;
                }
                if let Some(tap) = self.tap.as_mut() {
                    tap(from, to, &msg);
                }
                let entry = &mut self.nodes[slot];
                entry.queue.push_back((from, msg, self.now));
                let depth = entry.queue.len();
                if depth > entry.stats.max_queue_depth {
                    entry.stats.max_queue_depth = depth;
                }
                self.try_start_jobs(slot);
            }
            EventKind::JobComplete { node, epoch, job } => {
                let slot = match self.slot(node) {
                    Some(s) => s,
                    // A completion for a node that was never registered is
                    // just as misrouted as an unknown-destination Deliver:
                    // count it instead of vanishing silently.
                    None => {
                        self.dropped_unroutable += 1;
                        return;
                    }
                };
                let entry = &mut self.nodes[slot];
                if entry.epoch != epoch || !entry.up {
                    return; // stale: node crashed since this job began
                }
                let pos = entry
                    .running
                    .iter()
                    .position(|&(j, _, _)| j == job)
                    .expect("job was running");
                let (_, from, msg) = entry.running.swap_remove(pos);
                entry.busy_cores -= 1;
                entry.stats.processed += 1;
                self.handle_at(slot, NodeEvent::Message { from, msg });
                self.try_start_jobs(slot);
            }
            EventKind::Timer { node, id, epoch } => {
                let slot = match self.slot(node) {
                    Some(s) => s,
                    // Same unroutable accounting as Deliver/JobComplete.
                    None => {
                        self.dropped_unroutable += 1;
                        return;
                    }
                };
                let entry = &mut self.nodes[slot];
                if entry.epoch != epoch || !entry.up {
                    return;
                }
                entry.stats.timers += 1;
                self.handle_at(slot, NodeEvent::Timer { id });
                self.try_start_jobs(slot);
            }
            EventKind::Crash { node } => {
                if let Some(entry) = self.entry_mut(node) {
                    entry.up = false;
                    entry.epoch += 1;
                    entry.stats.dropped_crash += (entry.queue.len() + entry.running.len()) as u64;
                    entry.queue.clear();
                    entry.running.clear();
                    entry.busy_cores = 0;
                }
            }
            EventKind::Recover { node } => {
                if let Some(slot) = self.slot(node) {
                    let entry = &mut self.nodes[slot];
                    if !entry.up {
                        entry.up = true;
                        entry.epoch += 1;
                        self.handle_at(slot, NodeEvent::Recovered);
                        // Recovery handlers may self-enqueue work via a
                        // zero-delay self-send; like every other arm, give
                        // the node a chance to start service immediately
                        // instead of stalling until the next external
                        // event. (The queue is empty at this point unless
                        // the handler filled it: crashing cleared it and
                        // arrivals while down were dropped.)
                        self.try_start_jobs(slot);
                    }
                }
            }
        }
    }

    /// Diagnostic panic when the event budget trips: reports where the
    /// simulation was and which node was drowning.
    fn panic_event_budget(&self, at: Instant) -> ! {
        let busiest = self
            .nodes
            .iter()
            .max_by_key(|e| e.queue.len())
            .map(|e| format!("{} with {} queued messages", e.id, e.queue.len()))
            .unwrap_or_else(|| "no nodes registered".to_string());
        panic!(
            "event budget of {} exhausted at virtual time {:.3}ms \
             ({} events in the heap; deepest backlog: {}) — \
             runaway feedback loop, or raise SimConfig::max_events",
            self.config.max_events,
            at.as_millis_f64(),
            self.queue.len(),
            busiest,
        );
    }

    /// Runs until the event queue drains or `deadline` passes. Returns the
    /// time of the last processed event.
    ///
    /// The runaway-loop event budget is enforced at dispatch-slice
    /// boundaries rather than per event; slices are truncated so the check
    /// trips at exactly the event the per-event check would have caught
    /// (same panic, same reported virtual time).
    pub fn run_until(&mut self, deadline: Instant) -> Instant {
        /// Events dispatched between budget checks.
        const SLICE: u64 = 1024;
        // The engine's only wall-clock read: one start sample per call (plus
        // `.elapsed()` at the exits), batched across the whole dispatch run —
        // observability-only, never feeds simulated state.
        // lint-allow(wall-clock): observability-only events/sec wall timer; never feeds simulated state
        let wall_start = std::time::Instant::now();
        let alloc_start = crate::alloc_count::current();
        let mut slice_left = 0u64;
        loop {
            if slice_left == 0 {
                if self.events_processed > self.config.max_events {
                    // Symmetric with the normal exit below: both samples
                    // must land before unwinding, or allocs_per_event()
                    // silently under-reports on budget-truncated runs.
                    self.wall += wall_start.elapsed();
                    self.allocs += crate::alloc_count::current().wrapping_sub(alloc_start);
                    self.panic_event_budget(self.now);
                }
                // Truncate so the next boundary lands exactly on the first
                // event past the budget. The subtraction is safe (the check
                // above guarantees events_processed <= max_events); the +1
                // must saturate for max_events == u64::MAX.
                slice_left =
                    SLICE.min((self.config.max_events - self.events_processed).saturating_add(1));
            }
            let Some(key) = self.queue.peek_key() else {
                break;
            };
            if key.at > deadline {
                break;
            }
            let (key, kind) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            slice_left -= 1;
            debug_assert!(key.at >= self.now, "time went backwards");
            self.now = key.at;
            self.dispatch(kind);
        }
        self.wall += wall_start.elapsed();
        self.allocs += crate::alloc_count::current().wrapping_sub(alloc_start);
        self.now
    }

    /// Runs until the queue is fully drained.
    pub fn run_to_completion(&mut self) -> Instant {
        self.run_until(Instant::FAR_FUTURE)
    }

    /// Time of the next scheduled event, if any. A checking harness that
    /// pauses the run at fixed invariant intervals uses this to skip over
    /// stretches of empty virtual time (long drain tails, sparse periodic
    /// timers) without perturbing the event stream: between two events the
    /// cluster state cannot change, so a skipped pause would have observed
    /// exactly what the previous one did.
    pub fn next_event_at(&self) -> Option<Instant> {
        self.queue.min_key().map(|k| k.at)
    }

    /// Runs until the event queue drains or `deadline` passes, consulting
    /// `chooser` whenever ≥2 deliveries are simultaneously enabled at the
    /// same tick. With [`crate::IdentityChooser`] this dispatches the
    /// exact `(at, seq)` stream of [`Sim::run_until`]: the identity pick
    /// is always the lowest-seq staged delivery, non-delivery events run
    /// whenever they head the staging buffer (i.e. in seq order), and
    /// same-tick pushes join the staging buffer with strictly larger seq,
    /// exactly where the wheel would have popped them.
    ///
    /// A chooser may also run a delivery *across* a staged non-delivery
    /// event (delivering before vs. after a same-tick crash is a
    /// meaningful ordering); [`crate::ChoiceCtx::barrier`] flags such
    /// choice points so a pruning policy can treat them as dependent.
    ///
    /// Not available on windowed (sharded) engines.
    pub fn run_until_chosen(
        &mut self,
        deadline: Instant,
        chooser: &mut dyn crate::Chooser<M>,
    ) -> Instant {
        assert!(
            self.window.is_none(),
            "run_until_chosen requires the sequential engine"
        );
        if self.choice.is_none() {
            self.choice = Some(Box::new(crate::choice::ChoiceState::new(self.nodes.len())));
        }
        // One tick's events, kept in ascending seq order (wheel pop order;
        // same-tick pushes always carry a strictly larger seq).
        let mut staging: Vec<(SchedKey, EventKind<M>)> = Vec::new();
        while let Some(head) = self.queue.peek_key() {
            if head.at > deadline {
                break;
            }
            let tick = head.at;
            debug_assert!(tick >= self.now, "time went backwards");
            self.now = tick;
            while self.queue.peek_key().is_some_and(|k| k.at == tick) {
                staging.push(self.queue.pop().expect("peeked"));
            }
            while !staging.is_empty() {
                let idx = self.choose_staged(tick, &staging, chooser);
                let (key, kind) = staging.remove(idx);
                self.events_processed += 1;
                if self.events_processed > self.config.max_events {
                    self.panic_event_budget(tick);
                }
                self.note_chosen_dispatch(&kind, key.seq, tick);
                self.dispatch(kind);
                // Zero-delay effects land at this same tick; merge them so
                // later choices at this tick see them as enabled.
                while self.queue.peek_key().is_some_and(|k| k.at == tick) {
                    let ev = self.queue.pop().expect("peeked");
                    debug_assert!(
                        staging.last().is_none_or(|(k, _)| k.seq < ev.0.seq),
                        "same-tick push with non-monotone seq"
                    );
                    staging.push(ev);
                }
            }
        }
        self.now
    }

    /// Picks the staging index to dispatch next. Non-delivery events run
    /// in seq order whenever one heads the buffer; otherwise the choice
    /// set is every staged delivery, and the chooser is consulted only
    /// when there are at least two.
    fn choose_staged(
        &self,
        tick: Instant,
        staging: &[(SchedKey, EventKind<M>)],
        chooser: &mut dyn crate::Chooser<M>,
    ) -> usize {
        if !matches!(staging[0].1, EventKind::Deliver { .. }) {
            return 0;
        }
        let mut enabled: Vec<crate::Enabled<'_, M>> = Vec::new();
        let mut positions: Vec<usize> = Vec::new();
        for (i, (key, kind)) in staging.iter().enumerate() {
            if let EventKind::Deliver { to, from, msg } = kind {
                enabled.push(crate::Enabled {
                    seq: key.seq,
                    from: *from,
                    to: *to,
                    msg,
                });
                positions.push(i);
            }
        }
        if enabled.len() < 2 {
            return 0; // the head is the only enabled delivery
        }
        let st = self.choice.as_ref().expect("chosen mode");
        let ctx = crate::ChoiceCtx {
            now: tick,
            deliveries: st.deliveries,
            state_hash: self.choice_state_hash(),
            barrier: enabled.len() != staging.len(),
        };
        let pick = chooser.choose(&ctx, &enabled);
        assert!(
            pick < enabled.len(),
            "chooser returned {pick} for {} enabled deliveries",
            enabled.len()
        );
        positions[pick]
    }

    /// Folds one about-to-dispatch event into the chosen-mode state hash
    /// and delivery counter.
    fn note_chosen_dispatch(&mut self, kind: &EventKind<M>, seq: u64, tick: Instant) {
        let slot = self.slot(kind.target());
        let st = self.choice.as_mut().expect("chosen mode");
        if matches!(kind, EventKind::Deliver { .. }) {
            st.deliveries += 1;
        }
        let Some(slot) = slot else { return };
        if st.chains.len() <= slot {
            st.chains.resize(slot + 1, 0);
        }
        // Message payloads are deliberately not hashed: under a
        // deterministic protocol they are a function of the per-node
        // arrival histories the chains already encode, and hashing them
        // would demand `M: Hash` of every node implementation. The
        // scheduling `seq` stands in for message identity instead — it is
        // unique per event and, being assigned at push time, identical
        // across replays of the same prefix, so reordering two deliveries
        // that share (source, destination, tick) still changes the chain.
        let (tag, detail) = match kind {
            EventKind::Deliver { from, .. } => (1u64, from.raw()),
            EventKind::JobComplete { .. } => (2, 0),
            EventKind::Timer { id, .. } => (3, *id),
            EventKind::Crash { .. } => (4, 0),
            EventKind::Recover { .. } => (5, 0),
        };
        use crate::choice::mix64;
        let c = &mut st.chains[slot];
        *c = mix64(mix64(mix64(mix64(*c ^ tag) ^ detail) ^ seq) ^ tick.as_nanos());
    }

    /// Order-canonical hash of the chosen-mode dispatch history: each
    /// node's events are chained in their dispatch order, but chains of
    /// *different* nodes combine commutatively, so two interleavings that
    /// only permute deliveries to independent nodes hash identically — the
    /// property a visited-state set needs to merge equivalent states. Two
    /// *different* states may also collide (this is approximate, bitstate
    /// style); a checker using it for pruning trades a sliver of coverage
    /// for a tractable frontier, never soundness of reported violations.
    ///
    /// Zero until the first `run_until_chosen` call; plain `run_until`
    /// dispatches are not recorded.
    pub fn choice_state_hash(&self) -> u64 {
        use crate::choice::mix64;
        let Some(st) = &self.choice else { return 0 };
        let mut h = mix64(st.deliveries ^ 0x6E75_6D64_656C_6976) ^ mix64(self.now.as_nanos());
        for (slot, &c) in st.chains.iter().enumerate() {
            if c != 0 {
                h ^= mix64(c ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkSpec;

    /// Echoes every message back to its sender after a fixed service time.
    struct Echo {
        service: Duration,
        seen: Vec<u64>,
    }

    impl Node<u64> for Echo {
        fn service_time(&self, _msg: &u64) -> Duration {
            self.service
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            if let NodeEvent::Message { from, msg } = event {
                self.seen.push(msg);
                if from != NodeId::EXTERNAL {
                    out.send(from, msg + 1000);
                }
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim(service: Duration, latency: Duration) -> (Sim<u64>, NodeId, NodeId) {
        let links = Links::with_default(LinkSpec::fixed(latency));
        let mut sim = Sim::new(links);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        sim.add_node(
            a,
            Box::new(Kicker {
                peer: b,
                count: 3,
                replies: Vec::new(),
            }),
        );
        sim.add_node(
            b,
            Box::new(Echo {
                service,
                seen: Vec::new(),
            }),
        );
        (sim, a, b)
    }

    /// Replies to an external kick by pinging its peer `count` times.
    struct Kicker {
        peer: NodeId,
        count: u64,
        replies: Vec<(u64, Instant)>,
    }

    impl Node<u64> for Kicker {
        fn service_time(&self, _msg: &u64) -> Duration {
            Duration::ZERO
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            if let NodeEvent::Message { from, msg } = event {
                if from == NodeId::EXTERNAL {
                    for i in 0..self.count {
                        out.send(self.peer, i);
                    }
                } else {
                    self.replies.push((msg, out.now()));
                }
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn request_response_round_trip_timing() {
        let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(50)));
        let mut sim = Sim::new(links);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        sim.add_node(
            a,
            Box::new(Kicker {
                peer: b,
                count: 1,
                replies: Vec::new(),
            }),
        );
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        let kicker = sim.node_as::<Kicker>(a).unwrap();
        // 50µs there + 10µs service + 50µs back = 110µs.
        assert_eq!(kicker.replies, vec![(1000, Instant::from_micros(110))]);
    }

    #[test]
    fn fifo_single_core_queueing() {
        // 3 simultaneous messages, 10µs service: completions at 10/20/30µs.
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        for i in 0..3 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        let end = sim.run_to_completion();
        assert_eq!(end, Instant::from_micros(30));
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 3);
        // Waits: 0 + 10 + 20 = 30µs.
        assert_eq!(stats.total_wait, Duration::from_micros(30));
        // msg0 starts service on arrival, so only msg1+msg2 ever queue.
        assert_eq!(stats.max_queue_depth, 2);
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert_eq!(echo.seen, vec![0, 1, 2], "FIFO order preserved");
    }

    /// Echo with two cores.
    struct Echo2(Echo);
    impl Node<u64> for Echo2 {
        fn service_time(&self, msg: &u64) -> Duration {
            self.0.service_time(msg)
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            self.0.handle(event, out)
        }
        fn cores(&self) -> usize {
            2
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn multicore_halves_completion_time() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo2(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            })),
        );
        for i in 0..4 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        let end = sim.run_to_completion();
        assert_eq!(end, Instant::from_micros(20), "4 jobs on 2 cores at 10µs");
    }

    #[test]
    fn crash_drops_queue_and_in_flight_work() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(100),
                seen: Vec::new(),
            }),
        );
        for i in 0..5 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        // Crash mid-service of the first job.
        sim.crash_at(Instant::from_micros(50), b);
        // A message arriving while down is dropped.
        sim.inject_at(Instant::from_micros(60), b, 100);
        sim.run_to_completion();
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 0, "nothing completed before the crash");
        assert_eq!(stats.dropped_crash, 5);
        assert_eq!(stats.dropped_down, 1);
    }

    #[test]
    fn recovery_resumes_processing() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        sim.crash_at(Instant::ZERO, b);
        sim.recover_at(Instant::from_micros(100), b);
        sim.inject_at(Instant::from_micros(50), b, 1); // dropped (down)
        sim.inject_at(Instant::from_micros(150), b, 2); // processed
        sim.run_to_completion();
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.dropped_down, 1);
        assert_eq!(stats.processed, 1);
        assert!(sim.is_up(b));
    }

    #[test]
    fn link_latency_delays_delivery() {
        let (mut sim, a, _b) = two_node_sim(Duration::ZERO, Duration::from_millis(1));
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        // 3 pings: out at t=0, arrive 1ms, replies arrive 2ms.
        assert_eq!(sim.now(), Instant::from_millis(2));
        let kicker = sim.node_as::<Kicker>(a).unwrap();
        assert_eq!(kicker.replies.len(), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut sim, _a, b) =
                two_node_sim(Duration::from_micros(13), Duration::from_micros(97));
            for i in 0..50 {
                sim.inject_at(Instant::from_micros(i * 7), b, i);
            }
            sim.run_to_completion();
            (
                sim.now(),
                sim.events_processed(),
                sim.stats(b).unwrap().total_wait,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim: Sim<u64> = Sim::new(links);
        sim.add_node(
            NodeId::new(1),
            Box::new(Echo {
                service: Duration::ZERO,
                seen: Vec::new(),
            }),
        );
        sim.add_node(
            NodeId::new(1),
            Box::new(Echo {
                service: Duration::ZERO,
                seen: Vec::new(),
            }),
        );
    }

    /// Echo whose service time is the message value in microseconds.
    struct VarEcho {
        cores: usize,
        seen: Vec<u64>,
    }

    impl Node<u64> for VarEcho {
        fn service_time(&self, msg: &u64) -> Duration {
            Duration::from_micros(*msg)
        }
        fn handle(&mut self, event: NodeEvent<u64>, _out: &mut Outbox<u64>) {
            if let NodeEvent::Message { msg, .. } = event {
                self.seen.push(msg);
            }
        }
        fn cores(&self) -> usize {
            self.cores
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn multicore_jobs_complete_out_of_submission_order() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(b, Box::new(VarEcho { cores: 2, seen: Vec::new() }));
        // Job 0 takes 100µs, job 1 takes 10µs: both start at t=0 on separate
        // cores, and the later-submitted job finishes first.
        sim.inject_at(Instant::ZERO, b, 100);
        sim.inject_at(Instant::ZERO, b, 10);
        sim.run_to_completion();
        let echo = sim.node_as::<VarEcho>(b).unwrap();
        assert_eq!(echo.seen, vec![10, 100], "completion order, not FIFO");
    }

    #[test]
    fn stale_job_completions_dropped_across_epoch_bump() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(b, Box::new(VarEcho { cores: 2, seen: Vec::new() }));
        // Two in-flight jobs: the short one (10µs) completes before the
        // crash at 50µs, the long one (100µs) is still running and its
        // completion event must be ignored as stale after the epoch bump.
        sim.inject_at(Instant::ZERO, b, 100);
        sim.inject_at(Instant::ZERO, b, 10);
        sim.crash_at(Instant::from_micros(50), b);
        sim.recover_at(Instant::from_micros(60), b);
        // Post-recovery work processes under the new epoch.
        sim.inject_at(Instant::from_micros(70), b, 5);
        sim.run_to_completion();
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 2, "short pre-crash job + post-recovery job");
        assert_eq!(stats.dropped_crash, 1, "long job was in flight at the crash");
        let echo = sim.node_as::<VarEcho>(b).unwrap();
        assert_eq!(echo.seen, vec![10, 5], "stale completion never ran handle");
        assert!(sim.is_up(b));
    }

    #[test]
    fn horizon_derived_budget_scales_with_horizon() {
        let short = SimConfig::for_horizon(Duration::from_millis(1));
        let long = SimConfig::for_horizon(Duration::from_secs(10));
        assert!(short.max_events < long.max_events);
        // 1ms horizon: 1000µs * 64 + slack.
        assert_eq!(short.max_events, 1000 * 64 + 4_000_000);
        // Degenerate horizons still leave room for startup work.
        assert!(SimConfig::for_horizon(Duration::ZERO).max_events >= 4_000_000);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn event_budget_panic_is_descriptive() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::with_config(links, SimConfig { max_events: 4 });
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        for i in 0..10 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        sim.run_to_completion();
    }

    /// The budget check runs once per dispatch slice, but slices are
    /// truncated so it still trips at exactly the event the old per-event
    /// check caught: events_processed stops at `max_events + 1`, never
    /// rounded up to a slice boundary. Uses a budget that is neither a
    /// multiple of the slice size nor smaller than one slice.
    #[test]
    fn budget_trips_at_exactly_the_per_event_boundary() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let max_events = 1500u64;
        let mut sim = Sim::with_config(links, SimConfig { max_events });
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(1),
                seen: Vec::new(),
            }),
        );
        for i in 0..2_000u64 {
            sim.inject_at(Instant::from_micros(i), b, i);
        }
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_to_completion();
        }));
        let msg = panicked
            .expect_err("budget must trip")
            .downcast::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("event budget of 1500 exhausted"), "{msg}");
        assert_eq!(
            sim.events_processed(),
            max_events + 1,
            "slice truncation must stop at the first over-budget event"
        );
    }

    /// `max_events: u64::MAX` is the natural "disable the budget" value;
    /// the slice-size computation must not overflow on it (debug panic /
    /// release wrap to a zero-sized slice).
    #[test]
    fn unbounded_event_budget_does_not_overflow_slice_math() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::with_config(
            links,
            SimConfig {
                max_events: u64::MAX,
            },
        );
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(1),
                seen: Vec::new(),
            }),
        );
        for i in 0..10u64 {
            sim.inject_at(Instant::from_micros(i), b, i);
        }
        sim.run_to_completion();
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert_eq!(echo.seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unroutable_deliveries_are_counted() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let a = NodeId::new(1);
        let ghost = NodeId::new(99);
        sim.add_node(
            a,
            Box::new(Kicker {
                peer: ghost, // pings a node that was never registered
                count: 3,
                replies: Vec::new(),
            }),
        );
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        assert_eq!(sim.sim_stats().dropped_unroutable, 3);
    }

    /// Pin: a `JobComplete` for a node that was never registered is
    /// misrouted exactly like an unknown-destination `Deliver` and must
    /// hit the same counter instead of vanishing silently.
    #[test]
    fn unroutable_job_completions_are_counted() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim: Sim<u64> = Sim::new(links);
        sim.push(
            Instant::from_micros(1),
            EventKind::JobComplete {
                node: NodeId::new(99),
                epoch: 0,
                job: 0,
            },
        );
        sim.run_to_completion();
        assert_eq!(sim.sim_stats().dropped_unroutable, 1);
    }

    /// Pin: same accounting for a `Timer` aimed at an unknown node.
    #[test]
    fn unroutable_timers_are_counted() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim: Sim<u64> = Sim::new(links);
        sim.push(
            Instant::from_micros(1),
            EventKind::Timer {
                node: NodeId::new(99),
                id: 0,
                epoch: 0,
            },
        );
        sim.run_to_completion();
        assert_eq!(sim.sim_stats().dropped_unroutable, 1);
    }

    /// Reports one fake heap allocation per handled message, exercising
    /// the [`crate::alloc_count`] sampling in `run_until`.
    struct Alloky;

    impl Node<u64> for Alloky {
        fn service_time(&self, _msg: &u64) -> Duration {
            Duration::from_micros(1)
        }
        fn handle(&mut self, event: NodeEvent<u64>, _out: &mut Outbox<u64>) {
            if let NodeEvent::Message { .. } = event {
                crate::alloc_count::record(1);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Pin: the budget-panic exit must take the same allocation sample the
    /// normal exit takes, or `allocs_per_event()` silently reads zero for
    /// exactly the truncated runs whose panic message people debug with.
    #[test]
    fn budget_panic_exit_still_accumulates_allocs() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::with_config(links, SimConfig { max_events: 6 });
        let b = NodeId::new(2);
        sim.add_node(b, Box::new(Alloky));
        for i in 0..20u64 {
            sim.inject_at(Instant::from_micros(i), b, i);
        }
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_to_completion();
        }));
        assert!(panicked.is_err(), "budget must trip");
        assert!(
            sim.sim_stats().allocs >= 1,
            "allocations recorded before the budget panic must survive it"
        );
    }

    /// On `Recovered`, sends itself fresh work (zero link latency).
    struct Phoenix {
        me: NodeId,
        processed: Vec<u64>,
    }

    impl Node<u64> for Phoenix {
        fn service_time(&self, _msg: &u64) -> Duration {
            Duration::from_micros(1)
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            match event {
                NodeEvent::Recovered => out.send(self.me, 7),
                NodeEvent::Message { msg, .. } => self.processed.push(msg),
                NodeEvent::Timer { .. } => {}
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Pin: a recovered node that self-enqueues work in its `Recovered`
    /// handler processes it with no further external events — the
    /// `Recover` arm starts service like every other dispatch arm.
    #[test]
    fn recovered_node_immediately_starts_self_enqueued_work() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Phoenix {
                me: b,
                processed: Vec::new(),
            }),
        );
        sim.crash_at(Instant::ZERO, b);
        sim.recover_at(Instant::from_micros(10), b);
        sim.run_to_completion();
        assert_eq!(sim.stats(b).unwrap().processed, 1);
        let phoenix = sim.node_as::<Phoenix>(b).unwrap();
        assert_eq!(phoenix.processed, vec![7], "self-enqueued work ran");
    }

    #[test]
    fn routable_traffic_never_touches_the_unroutable_counter() {
        let (mut sim, a, _b) = two_node_sim(Duration::from_micros(5), Duration::from_micros(20));
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        let stats = sim.sim_stats();
        debug_assert_eq!(stats.dropped_unroutable, 0);
        assert_eq!(stats.dropped_unroutable, 0);
    }

    #[test]
    fn total_loss_blackholes_the_link() {
        let (mut sim, a, b) = two_node_sim(Duration::ZERO, Duration::from_micros(10));
        sim.links_mut().set_fault(
            a,
            b,
            crate::links::FaultSpec {
                loss: 1.0,
                ..crate::links::FaultSpec::NONE
            },
        );
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert!(echo.seen.is_empty(), "every ping was lost");
        assert_eq!(sim.sim_stats().dropped_loss, 3);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let (mut sim, a, b) = two_node_sim(Duration::ZERO, Duration::from_micros(10));
        sim.links_mut().set_fault(
            a,
            b,
            crate::links::FaultSpec {
                duplicate: 1.0,
                ..crate::links::FaultSpec::NONE
            },
        );
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        let stats = sim.sim_stats();
        assert_eq!(stats.duplicated, 3);
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert_eq!(echo.seen.len(), 6, "each of 3 pings arrived twice");
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let (mut sim, a, b) = two_node_sim(Duration::ZERO, Duration::ZERO);
        // Kicker sends its pings at t=0; partition covers that instant.
        sim.links_mut()
            .add_partition(a, b, Instant::ZERO, Instant::from_micros(1));
        sim.inject_at(Instant::ZERO, a, 0);
        // A second kick after the window: traffic flows again.
        sim.inject_at(Instant::from_micros(5), a, 0);
        sim.run_to_completion();
        let stats = sim.sim_stats();
        assert_eq!(stats.dropped_partition, 3);
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert_eq!(echo.seen.len(), 3, "only the post-heal pings arrived");
    }

    #[test]
    fn faulty_runs_replay_identically() {
        let run = || {
            let (mut sim, a, b) =
                two_node_sim(Duration::from_micros(13), Duration::from_micros(97));
            sim.links_mut().set_seed(7);
            sim.links_mut().set_fault_default(crate::links::FaultSpec {
                loss: 0.2,
                duplicate: 0.2,
                reorder: 0.3,
                reorder_window: Duration::from_micros(200),
            });
            for i in 0..50 {
                sim.inject_at(Instant::from_micros(i * 7), a, i);
            }
            sim.run_to_completion();
            let stats = sim.sim_stats();
            (
                sim.now(),
                sim.events_processed(),
                stats.dropped_loss,
                stats.duplicated,
                stats.reordered,
                sim.node_as::<Echo>(b).unwrap().seen.clone(),
            )
        };
        let first = run();
        assert!(
            first.2 > 0 && first.3 > 0 && first.4 > 0,
            "faults actually fired: {first:?}"
        );
        assert_eq!(first, run());
    }

    #[test]
    fn sim_stats_tracks_events_and_wall_clock() {
        let (mut sim, _a, b) = two_node_sim(Duration::from_micros(5), Duration::from_micros(20));
        for i in 0..100 {
            sim.inject_at(Instant::from_micros(i), b, i);
        }
        sim.run_to_completion();
        let stats = sim.sim_stats();
        assert_eq!(stats.events_processed, sim.events_processed());
        assert!(stats.events_processed > 100);
        assert!(stats.events_per_sec() >= 0.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        for i in 0..10 {
            sim.inject_at(Instant::from_micros(i * 100), b, i);
        }
        sim.run_until(Instant::from_micros(450));
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 5);
        sim.run_to_completion();
        assert_eq!(sim.stats(b).unwrap().processed, 10);
    }
}
