//! The discrete-event engine.
//!
//! Each node is a multi-core FIFO queueing server running a [`Node`] state
//! machine. The engine pops time-ordered events; `Deliver` enqueues a
//! message at its destination, `JobComplete` runs the node's handler at
//! service completion (charging the declared service time), `Timer` runs
//! zero-cost internal work, `Crash`/`Recover` inject failures.
//!
//! Determinism: the event queue orders by `(time, sequence)` where the
//! sequence is assigned at scheduling time, so ties break identically on
//! every run.

use crate::links::Links;
use crate::stats::NodeStats;
use neutrino_common::time::{Duration, Instant};
use std::any::Any;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// Identifies a node inside a simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Sender id used for externally injected traffic.
    pub const EXTERNAL: NodeId = NodeId(u64::MAX);

    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "node-external")
        } else {
            write!(f, "node-{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What a node is asked to handle.
#[derive(Debug)]
pub enum NodeEvent<M> {
    /// A message finished service (the node now reacts to it).
    Message {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A timer set earlier fired.
    Timer {
        /// The id passed to [`Outbox::set_timer`].
        id: u64,
    },
    /// The node just recovered from a crash (state was NOT preserved by the
    /// engine; the node decides what recovery means).
    Recovered,
}

/// The only way a node affects the world: messages out and timers.
pub struct Outbox<M> {
    now: Instant,
    sends: Vec<(NodeId, M, Duration)>,
    timers: Vec<(Duration, u64)>,
}

impl<M> Outbox<M> {
    fn new(now: Instant) -> Self {
        Outbox {
            now,
            sends: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Sends a message; it leaves the node immediately and arrives after the
    /// link delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg, Duration::ZERO));
    }

    /// Sends a message after an extra local delay (e.g. modeling work done
    /// off the critical path).
    pub fn send_after(&mut self, to: NodeId, msg: M, extra: Duration) {
        self.sends.push((to, msg, extra));
    }

    /// Arms a timer that fires after `delay` with the given id.
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        self.timers.push((delay, id));
    }
}

/// A protocol state machine living at one node.
pub trait Node<M>: Any {
    /// Service time charged for a message *before* [`Node::handle`] runs —
    /// the CPU the node burns parsing, processing, and building responses.
    /// Zero means the message is pure bookkeeping.
    fn service_time(&self, msg: &M) -> Duration;

    /// Reacts to an event. All effects go through the outbox.
    fn handle(&mut self, event: NodeEvent<M>, out: &mut Outbox<M>);

    /// Number of cores serving this node's queue.
    fn cores(&self) -> usize {
        1
    }

    /// Downcast support (retrieving results after a run).
    fn as_any(&mut self) -> &mut dyn Any;
}

enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    JobComplete { node: NodeId, epoch: u64, job: u64 },
    Timer { node: NodeId, id: u64, epoch: u64 },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

struct Event<M> {
    at: Instant,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeEntry<M> {
    node: Box<dyn Node<M>>,
    queue: VecDeque<(NodeId, M, Instant)>,
    busy_cores: usize,
    /// In-flight jobs keyed by job id (multicore jobs finish out of order).
    running: HashMap<u64, (NodeId, M)>,
    up: bool,
    epoch: u64,
    stats: NodeStats,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cap on processed events (guards against runaway loops).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 2_000_000_000,
        }
    }
}

/// The simulator.
pub struct Sim<M> {
    now: Instant,
    seq: u64,
    job_seq: u64,
    link_seq: u64,
    queue: BinaryHeap<Event<M>>,
    nodes: HashMap<NodeId, NodeEntry<M>>,
    links: Links,
    config: SimConfig,
    events_processed: u64,
}

impl<M: 'static> Sim<M> {
    /// Creates a simulator over the given link table.
    pub fn new(links: Links) -> Self {
        Self::with_config(links, SimConfig::default())
    }

    /// Creates a simulator with explicit config.
    pub fn with_config(links: Links, config: SimConfig) -> Self {
        Sim {
            now: Instant::ZERO,
            seq: 0,
            job_seq: 0,
            link_seq: 0,
            queue: BinaryHeap::new(),
            nodes: HashMap::new(),
            links,
            config,
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Registers a node. Panics on duplicate ids.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn Node<M>>) {
        let prev = self.nodes.insert(
            id,
            NodeEntry {
                node,
                queue: VecDeque::new(),
                busy_cores: 0,
                running: HashMap::new(),
                up: true,
                epoch: 0,
                stats: NodeStats::default(),
            },
        );
        assert!(prev.is_none(), "duplicate node id {id}");
    }

    /// Mutable access to the links table (topology changes mid-run).
    pub fn links_mut(&mut self) -> &mut Links {
        &mut self.links
    }

    fn push(&mut self, at: Instant, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Injects a message from outside the simulated network, arriving at
    /// `to` at absolute time `at` (no link delay applied).
    pub fn inject_at(&mut self, at: Instant, to: NodeId, msg: M) {
        self.push(
            at,
            EventKind::Deliver {
                to,
                from: NodeId::EXTERNAL,
                msg,
            },
        );
    }

    /// Schedules a crash of `node` at `at`: its queue and in-flight work are
    /// discarded and later arrivals are dropped until recovery.
    pub fn crash_at(&mut self, at: Instant, node: NodeId) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at `at`.
    pub fn recover_at(&mut self, at: Instant, node: NodeId) {
        self.push(at, EventKind::Recover { node });
    }

    /// Whether a node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes.get(&node).map(|n| n.up).unwrap_or(false)
    }

    /// Statistics of a node.
    pub fn stats(&self, node: NodeId) -> Option<&NodeStats> {
        self.nodes.get(&node).map(|n| &n.stats)
    }

    /// Downcasts a node to retrieve results after (or during) a run.
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes.get_mut(&id)?.node.as_any().downcast_mut::<T>()
    }

    fn flush_outbox(&mut self, from: NodeId, out: Outbox<M>, epoch: u64) {
        let now = out.now;
        for (to, msg, extra) in out.sends {
            let delay = self.links.sample_delay(from, to, self.link_seq);
            self.link_seq += 1;
            self.push(now + extra + delay, EventKind::Deliver { to, from, msg });
        }
        for (delay, id) in out.timers {
            self.push(
                now + delay,
                EventKind::Timer {
                    node: from,
                    id,
                    epoch,
                },
            );
        }
    }

    fn try_start_jobs(&mut self, id: NodeId) {
        loop {
            let entry = match self.nodes.get_mut(&id) {
                Some(e) => e,
                None => return,
            };
            if !entry.up || entry.busy_cores >= entry.node.cores() || entry.queue.is_empty() {
                return;
            }
            let (from, msg, enq) = entry.queue.pop_front().expect("non-empty");
            let st = entry.node.service_time(&msg);
            entry.busy_cores += 1;
            entry.stats.total_wait += self.now.saturating_since(enq);
            entry.stats.busy += st;
            let job = self.job_seq;
            self.job_seq += 1;
            entry.running.insert(job, (from, msg));
            let epoch = entry.epoch;
            let at = self.now + st;
            self.push(
                at,
                EventKind::JobComplete {
                    node: id,
                    epoch,
                    job,
                },
            );
        }
    }

    /// Runs until the event queue drains or `deadline` passes. Returns the
    /// time of the last processed event.
    pub fn run_until(&mut self, deadline: Instant) -> Instant {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.config.max_events,
                "event budget exceeded — runaway simulation?"
            );
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            match ev.kind {
                EventKind::Deliver { to, from, msg } => {
                    let entry = match self.nodes.get_mut(&to) {
                        Some(e) => e,
                        None => continue, // unknown destination: dropped
                    };
                    if !entry.up {
                        entry.stats.dropped_down += 1;
                        continue;
                    }
                    entry.queue.push_back((from, msg, self.now));
                    let depth = entry.queue.len();
                    if depth > entry.stats.max_queue_depth {
                        entry.stats.max_queue_depth = depth;
                    }
                    self.try_start_jobs(to);
                }
                EventKind::JobComplete { node, epoch, job } => {
                    let entry = match self.nodes.get_mut(&node) {
                        Some(e) => e,
                        None => continue,
                    };
                    if entry.epoch != epoch || !entry.up {
                        continue; // stale: node crashed since this job began
                    }
                    let (from, msg) = entry.running.remove(&job).expect("job was running");
                    entry.busy_cores -= 1;
                    entry.stats.processed += 1;
                    let mut out = Outbox::new(self.now);
                    entry
                        .node
                        .handle(NodeEvent::Message { from, msg }, &mut out);
                    let epoch = entry.epoch;
                    self.flush_outbox(node, out, epoch);
                    self.try_start_jobs(node);
                }
                EventKind::Timer { node, id, epoch } => {
                    let entry = match self.nodes.get_mut(&node) {
                        Some(e) => e,
                        None => continue,
                    };
                    if entry.epoch != epoch || !entry.up {
                        continue;
                    }
                    entry.stats.timers += 1;
                    let mut out = Outbox::new(self.now);
                    entry.node.handle(NodeEvent::Timer { id }, &mut out);
                    let epoch = entry.epoch;
                    self.flush_outbox(node, out, epoch);
                    self.try_start_jobs(node);
                }
                EventKind::Crash { node } => {
                    if let Some(entry) = self.nodes.get_mut(&node) {
                        entry.up = false;
                        entry.epoch += 1;
                        entry.stats.dropped_crash +=
                            (entry.queue.len() + entry.running.len()) as u64;
                        entry.queue.clear();
                        entry.running.clear();
                        entry.busy_cores = 0;
                    }
                }
                EventKind::Recover { node } => {
                    if let Some(entry) = self.nodes.get_mut(&node) {
                        if !entry.up {
                            entry.up = true;
                            entry.epoch += 1;
                            let mut out = Outbox::new(self.now);
                            entry.node.handle(NodeEvent::Recovered, &mut out);
                            let epoch = entry.epoch;
                            self.flush_outbox(node, out, epoch);
                        }
                    }
                }
            }
        }
        self.now
    }

    /// Runs until the queue is fully drained.
    pub fn run_to_completion(&mut self) -> Instant {
        self.run_until(Instant::FAR_FUTURE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkSpec;

    /// Echoes every message back to its sender after a fixed service time.
    struct Echo {
        service: Duration,
        seen: Vec<u64>,
    }

    impl Node<u64> for Echo {
        fn service_time(&self, _msg: &u64) -> Duration {
            self.service
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            if let NodeEvent::Message { from, msg } = event {
                self.seen.push(msg);
                if from != NodeId::EXTERNAL {
                    out.send(from, msg + 1000);
                }
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim(service: Duration, latency: Duration) -> (Sim<u64>, NodeId, NodeId) {
        let links = Links::with_default(LinkSpec::fixed(latency));
        let mut sim = Sim::new(links);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        sim.add_node(
            a,
            Box::new(Kicker {
                peer: b,
                count: 3,
                replies: Vec::new(),
            }),
        );
        sim.add_node(
            b,
            Box::new(Echo {
                service,
                seen: Vec::new(),
            }),
        );
        (sim, a, b)
    }

    /// Replies to an external kick by pinging its peer `count` times.
    struct Kicker {
        peer: NodeId,
        count: u64,
        replies: Vec<(u64, Instant)>,
    }

    impl Node<u64> for Kicker {
        fn service_time(&self, _msg: &u64) -> Duration {
            Duration::ZERO
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            if let NodeEvent::Message { from, msg } = event {
                if from == NodeId::EXTERNAL {
                    for i in 0..self.count {
                        out.send(self.peer, i);
                    }
                } else {
                    self.replies.push((msg, out.now()));
                }
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn request_response_round_trip_timing() {
        let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(50)));
        let mut sim = Sim::new(links);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        sim.add_node(
            a,
            Box::new(Kicker {
                peer: b,
                count: 1,
                replies: Vec::new(),
            }),
        );
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        let kicker = sim.node_as::<Kicker>(a).unwrap();
        // 50µs there + 10µs service + 50µs back = 110µs.
        assert_eq!(kicker.replies, vec![(1000, Instant::from_micros(110))]);
    }

    #[test]
    fn fifo_single_core_queueing() {
        // 3 simultaneous messages, 10µs service: completions at 10/20/30µs.
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        for i in 0..3 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        let end = sim.run_to_completion();
        assert_eq!(end, Instant::from_micros(30));
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 3);
        // Waits: 0 + 10 + 20 = 30µs.
        assert_eq!(stats.total_wait, Duration::from_micros(30));
        // msg0 starts service on arrival, so only msg1+msg2 ever queue.
        assert_eq!(stats.max_queue_depth, 2);
        let echo = sim.node_as::<Echo>(b).unwrap();
        assert_eq!(echo.seen, vec![0, 1, 2], "FIFO order preserved");
    }

    /// Echo with two cores.
    struct Echo2(Echo);
    impl Node<u64> for Echo2 {
        fn service_time(&self, msg: &u64) -> Duration {
            self.0.service_time(msg)
        }
        fn handle(&mut self, event: NodeEvent<u64>, out: &mut Outbox<u64>) {
            self.0.handle(event, out)
        }
        fn cores(&self) -> usize {
            2
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn multicore_halves_completion_time() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo2(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            })),
        );
        for i in 0..4 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        let end = sim.run_to_completion();
        assert_eq!(end, Instant::from_micros(20), "4 jobs on 2 cores at 10µs");
    }

    #[test]
    fn crash_drops_queue_and_in_flight_work() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(100),
                seen: Vec::new(),
            }),
        );
        for i in 0..5 {
            sim.inject_at(Instant::ZERO, b, i);
        }
        // Crash mid-service of the first job.
        sim.crash_at(Instant::from_micros(50), b);
        // A message arriving while down is dropped.
        sim.inject_at(Instant::from_micros(60), b, 100);
        sim.run_to_completion();
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 0, "nothing completed before the crash");
        assert_eq!(stats.dropped_crash, 5);
        assert_eq!(stats.dropped_down, 1);
    }

    #[test]
    fn recovery_resumes_processing() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        sim.crash_at(Instant::ZERO, b);
        sim.recover_at(Instant::from_micros(100), b);
        sim.inject_at(Instant::from_micros(50), b, 1); // dropped (down)
        sim.inject_at(Instant::from_micros(150), b, 2); // processed
        sim.run_to_completion();
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.dropped_down, 1);
        assert_eq!(stats.processed, 1);
        assert!(sim.is_up(b));
    }

    #[test]
    fn link_latency_delays_delivery() {
        let (mut sim, a, _b) = two_node_sim(Duration::ZERO, Duration::from_millis(1));
        sim.inject_at(Instant::ZERO, a, 0);
        sim.run_to_completion();
        // 3 pings: out at t=0, arrive 1ms, replies arrive 2ms.
        assert_eq!(sim.now(), Instant::from_millis(2));
        let kicker = sim.node_as::<Kicker>(a).unwrap();
        assert_eq!(kicker.replies.len(), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut sim, _a, b) =
                two_node_sim(Duration::from_micros(13), Duration::from_micros(97));
            for i in 0..50 {
                sim.inject_at(Instant::from_micros(i * 7), b, i);
            }
            sim.run_to_completion();
            (
                sim.now(),
                sim.events_processed(),
                sim.stats(b).unwrap().total_wait,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim: Sim<u64> = Sim::new(links);
        sim.add_node(
            NodeId::new(1),
            Box::new(Echo {
                service: Duration::ZERO,
                seen: Vec::new(),
            }),
        );
        sim.add_node(
            NodeId::new(1),
            Box::new(Echo {
                service: Duration::ZERO,
                seen: Vec::new(),
            }),
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let mut sim = Sim::new(links);
        let b = NodeId::new(2);
        sim.add_node(
            b,
            Box::new(Echo {
                service: Duration::from_micros(10),
                seen: Vec::new(),
            }),
        );
        for i in 0..10 {
            sim.inject_at(Instant::from_micros(i * 100), b, i);
        }
        sim.run_until(Instant::from_micros(450));
        let stats = sim.stats(b).unwrap();
        assert_eq!(stats.processed, 5);
        sim.run_to_completion();
        assert_eq!(sim.stats(b).unwrap().processed, 10);
    }
}
