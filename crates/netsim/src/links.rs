//! Point-to-point link model.

use crate::engine::NodeId;
use neutrino_common::time::Duration;
use std::collections::HashMap;

/// Propagation characteristics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Base one-way propagation delay.
    pub latency: Duration,
    /// Maximum additional deterministic jitter (uniform in `0..=jitter`).
    pub jitter: Duration,
}

impl LinkSpec {
    /// A link with fixed latency and no jitter.
    pub const fn fixed(latency: Duration) -> Self {
        LinkSpec {
            latency,
            jitter: Duration::ZERO,
        }
    }
}

/// The link table: explicit per-pair entries over a default.
#[derive(Debug, Clone)]
pub struct Links {
    default: LinkSpec,
    // Directed overrides; lookups fall back to the default.
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    // Mixed into the jitter hash; seed 0 reproduces the unseeded stream.
    seed: u64,
}

impl Links {
    /// All pairs use `default` unless overridden.
    pub fn with_default(default: LinkSpec) -> Self {
        Links {
            default,
            overrides: HashMap::new(),
            seed: 0,
        }
    }

    /// Sets the jitter seed: runs with the same seed replay identical
    /// delays; different seeds re-roll every jittered link draw.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Sets a directed override.
    pub fn set(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.overrides.insert((from, to), spec);
    }

    /// Sets a symmetric override.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.overrides.insert((a, b), spec);
        self.overrides.insert((b, a), spec);
    }

    /// The spec for a directed pair.
    pub fn get(&self, from: NodeId, to: NodeId) -> LinkSpec {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// Samples the delay of one transmission, with deterministic jitter
    /// derived from `(from, to, sequence)` so traces replay identically.
    pub fn sample_delay(&self, from: NodeId, to: NodeId, sequence: u64) -> Duration {
        let spec = self.get(from, to);
        if spec.jitter == Duration::ZERO {
            return spec.latency;
        }
        // splitmix64 over the tuple: stateless deterministic jitter.
        let mut x = from.raw() ^ to.raw().rotate_left(21) ^ sequence.rotate_left(42) ^ self.seed;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let j = x % (spec.jitter.as_nanos() + 1);
        spec.latency + Duration::from_nanos(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_overrides() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(50)));
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        assert_eq!(links.get(a, b).latency, Duration::from_micros(50));
        links.set(a, b, LinkSpec::fixed(Duration::from_millis(2)));
        assert_eq!(links.get(a, b).latency, Duration::from_millis(2));
        // Directed: reverse still default.
        assert_eq!(links.get(b, a).latency, Duration::from_micros(50));
    }

    #[test]
    fn symmetric_override() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        links.set_symmetric(a, b, LinkSpec::fixed(Duration::from_millis(1)));
        assert_eq!(links.get(a, b), links.get(b, a));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut links = Links::with_default(LinkSpec {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(20),
        });
        links.set(
            NodeId::new(3),
            NodeId::new(4),
            LinkSpec {
                latency: Duration::from_micros(100),
                jitter: Duration::from_micros(20),
            },
        );
        let a = NodeId::new(3);
        let b = NodeId::new(4);
        let mut distinct = std::collections::HashSet::new();
        for seq in 0..100 {
            let d1 = links.sample_delay(a, b, seq);
            let d2 = links.sample_delay(a, b, seq);
            assert_eq!(d1, d2, "same sequence must give same jitter");
            assert!(d1 >= Duration::from_micros(100));
            assert!(d1 <= Duration::from_micros(120));
            distinct.insert(d1.as_nanos());
        }
        assert!(distinct.len() > 10, "jitter should actually vary");
    }

    #[test]
    fn seed_reshuffles_jitter_but_zero_matches_unseeded() {
        let spec = LinkSpec {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(50),
        };
        let unseeded = Links::with_default(spec);
        let mut zero = Links::with_default(spec);
        zero.set_seed(0);
        let mut other = Links::with_default(spec);
        other.set_seed(0xDEAD_BEEF);
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let mut differs = false;
        for seq in 0..100 {
            assert_eq!(
                unseeded.sample_delay(a, b, seq),
                zero.sample_delay(a, b, seq),
                "seed 0 must reproduce the unseeded stream"
            );
            if other.sample_delay(a, b, seq) != unseeded.sample_delay(a, b, seq) {
                differs = true;
            }
        }
        assert!(differs, "a different seed must change the jitter stream");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(7)));
        for seq in 0..10 {
            assert_eq!(
                links.sample_delay(NodeId::new(1), NodeId::new(2), seq),
                Duration::from_micros(7)
            );
        }
    }
}
