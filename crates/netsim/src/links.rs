//! Point-to-point link model: latency/jitter plus an optional seeded
//! fault layer (loss, duplication, bounded reorder, timed partitions).

use crate::engine::NodeId;
use neutrino_common::time::{Duration, Instant};
use std::collections::HashMap;

/// Propagation characteristics of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Base one-way propagation delay.
    pub latency: Duration,
    /// Maximum additional deterministic jitter (uniform in `0..=jitter`).
    pub jitter: Duration,
}

impl LinkSpec {
    /// A link with fixed latency and no jitter.
    pub const fn fixed(latency: Duration) -> Self {
        LinkSpec {
            latency,
            jitter: Duration::ZERO,
        }
    }
}

/// Stochastic fault model of one directed link. Probabilities are drawn
/// from the same stateless splittable-seed hash as jitter (keyed on the
/// link sequence number), so a faulty run replays byte-identically under
/// any worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability in `[0, 1]` that a transmission is silently dropped.
    pub loss: f64,
    /// Probability in `[0, 1]` that a transmission is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a transmission is held back by up to
    /// [`FaultSpec::reorder_window`] extra delay (overtaken by later sends).
    pub reorder: f64,
    /// Maximum extra delay for reordered (and duplicated) transmissions.
    pub reorder_window: Duration,
}

impl FaultSpec {
    /// A fault-free link: every probability zero.
    pub const NONE: FaultSpec = FaultSpec {
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_window: Duration::ZERO,
    };

    /// Whether this spec can never perturb a transmission.
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// A timed bidirectional partition: no traffic passes between `a` and `b`
/// (either direction) in `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partition {
    a: NodeId,
    b: NodeId,
    from: Instant,
    until: Instant,
}

/// The fate of one transmission after the fault layer has spoken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered. `delay` includes jitter and any reorder hold-back;
    /// `duplicate` carries the (independent) delay of a second copy.
    Deliver {
        /// Link delay of the primary copy.
        delay: Duration,
        /// Delay of the duplicated copy, when the duplication draw hit.
        duplicate: Option<Duration>,
        /// Whether the reorder draw hit (the primary delay was inflated).
        reordered: bool,
    },
    /// Dropped by the loss probability.
    Lost,
    /// Dropped because the pair is inside a partition window.
    Partitioned,
}

/// Deterministic multiply-rotate hasher (FxHash-style) for the override
/// maps: `(NodeId, NodeId)` lookups sit on the per-send hot path, where
/// SipHash's per-lookup setup cost dominates. Not DoS-resistant — keys
/// are simulation node ids, not attacker-controlled input — and fully
/// deterministic across runs and platforms (no ambient seeding).
#[derive(Debug, Clone, Copy, Default)]
struct FxBuildHasher;

#[derive(Default)]
struct FxHasher(u64);

const FX_KEY: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_KEY);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
}

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

// Per-draw-type salts keep the loss/dup/reorder streams independent of
// each other and of the jitter stream (salt 0).
const SALT_LOSS: u64 = 0xA24B_AED4_963E_E407;
const SALT_DUP: u64 = 0x9FB2_1C65_1E98_DF25;
const SALT_REORDER: u64 = 0xD6E8_FEB8_6659_FD93;
const SALT_REORDER_DELAY: u64 = 0x3C79_AC49_2BA7_B653;
const SALT_DUP_DELAY: u64 = 0x1D8E_4E27_C47D_124F;

/// The link table: explicit per-pair entries over a default.
#[derive(Debug, Clone)]
pub struct Links {
    default: LinkSpec,
    // Directed overrides; lookups fall back to the default.
    overrides: HashMap<(NodeId, NodeId), LinkSpec, FxBuildHasher>,
    // Mixed into the jitter hash; seed 0 reproduces the unseeded stream.
    seed: u64,
    // Fault layer: default spec, directed overrides, partition windows.
    fault_default: FaultSpec,
    fault_overrides: HashMap<(NodeId, NodeId), FaultSpec, FxBuildHasher>,
    partitions: Vec<Partition>,
    // How many entries of `overrides` carry non-zero jitter, maintained
    // incrementally by `set`/`set_symmetric` so `sequence_sensitive` never
    // iterates the map (hash iteration order is banned in this crate).
    jittered_overrides: usize,
}

impl Links {
    /// All pairs use `default` unless overridden.
    pub fn with_default(default: LinkSpec) -> Self {
        Links {
            default,
            overrides: HashMap::default(),
            seed: 0,
            fault_default: FaultSpec::NONE,
            fault_overrides: HashMap::default(),
            partitions: Vec::new(),
            jittered_overrides: 0,
        }
    }

    /// Sets the jitter seed: runs with the same seed replay identical
    /// delays; different seeds re-roll every jittered link draw.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Sets a directed override.
    pub fn set(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        let old = self.overrides.insert((from, to), spec);
        self.jittered_overrides += (spec.jitter != Duration::ZERO) as usize;
        if let Some(old) = old {
            self.jittered_overrides -= (old.jitter != Duration::ZERO) as usize;
        }
    }

    /// Sets a symmetric override.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.set(a, b, spec);
        self.set(b, a, spec);
    }

    /// Whether any delivery decision consults the per-send link sequence
    /// number (jitter or probabilistic fault draws key on it). The
    /// sequential engine interleaves one global sequence counter across
    /// all sends, which a sharded run cannot reproduce — so the sharded
    /// engine only parallelizes when this is `false` and degrades to
    /// sequential execution otherwise. Timed partitions key on virtual
    /// time only and are *not* sequence-sensitive.
    ///
    /// Conservative: a fault override of `FaultSpec::NONE` still counts.
    pub fn sequence_sensitive(&self) -> bool {
        self.default.jitter != Duration::ZERO
            || self.jittered_overrides > 0
            || !self.fault_default.is_none()
            || !self.fault_overrides.is_empty()
    }

    /// The spec for a directed pair.
    pub fn get(&self, from: NodeId, to: NodeId) -> LinkSpec {
        // Uniform topologies (single-region figures, the ring bench) keep
        // the override map empty: skip the hash entirely.
        if self.overrides.is_empty() {
            return self.default;
        }
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default)
    }

    /// Sets the default fault spec applied to every pair without an
    /// override.
    pub fn set_fault_default(&mut self, spec: FaultSpec) {
        self.fault_default = spec;
    }

    /// Sets a directed fault override.
    pub fn set_fault(&mut self, from: NodeId, to: NodeId, spec: FaultSpec) {
        self.fault_overrides.insert((from, to), spec);
    }

    /// Sets a symmetric fault override.
    pub fn set_fault_symmetric(&mut self, a: NodeId, b: NodeId, spec: FaultSpec) {
        self.fault_overrides.insert((a, b), spec);
        self.fault_overrides.insert((b, a), spec);
    }

    /// Adds a bidirectional partition between `a` and `b`: every
    /// transmission in either direction is dropped in `[from, until)`.
    pub fn add_partition(&mut self, a: NodeId, b: NodeId, from: Instant, until: Instant) {
        self.partitions.push(Partition { a, b, from, until });
    }

    /// The fault spec for a directed pair.
    pub fn fault_for(&self, from: NodeId, to: NodeId) -> FaultSpec {
        if self.fault_overrides.is_empty() {
            return self.fault_default;
        }
        self.fault_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.fault_default)
    }

    /// Whether `(from, to)` is inside a partition window at `now`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, now: Instant) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == from && p.b == to) || (p.a == to && p.b == from))
                && now >= p.from
                && now < p.until
        })
    }

    /// splitmix64 over the transmission tuple plus a per-draw-type salt:
    /// stateless, splittable, replay-identical streams.
    fn mix(&self, from: NodeId, to: NodeId, sequence: u64, salt: u64) -> u64 {
        let mut x =
            from.raw() ^ to.raw().rotate_left(21) ^ sequence.rotate_left(42) ^ self.seed ^ salt;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Bernoulli draw at probability `p` for this transmission and salt.
    fn hit(&self, from: NodeId, to: NodeId, sequence: u64, salt: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // Top 53 bits → uniform in [0, 1).
        let u = (self.mix(from, to, sequence, salt) >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Uniform draw in `0..=max` nanoseconds for this transmission and salt.
    fn uniform(&self, from: NodeId, to: NodeId, sequence: u64, salt: u64, max: Duration) -> Duration {
        if max == Duration::ZERO {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.mix(from, to, sequence, salt) % (max.as_nanos() + 1))
    }

    /// Samples the delay of one transmission, with deterministic jitter
    /// derived from `(from, to, sequence)` so traces replay identically.
    pub fn sample_delay(&self, from: NodeId, to: NodeId, sequence: u64) -> Duration {
        let spec = self.get(from, to);
        if spec.jitter == Duration::ZERO {
            return spec.latency;
        }
        spec.latency + self.uniform(from, to, sequence, 0, spec.jitter)
    }

    /// Decides the fate of one transmission: partition check, loss draw,
    /// then delay (jitter + optional reorder hold-back) and an optional
    /// duplicate copy. With no faults configured this reduces exactly to
    /// [`Links::sample_delay`], so fault-free runs are byte-identical to
    /// the pre-fault-layer engine.
    pub fn plan_delivery(
        &self,
        from: NodeId,
        to: NodeId,
        sequence: u64,
        now: Instant,
    ) -> Delivery {
        // Fast path: no fault layer configured anywhere — the common case
        // for throughput figures — costs one `is_empty`/`is_none` cascade
        // and no hash lookups.
        if self.fault_overrides.is_empty()
            && self.partitions.is_empty()
            && self.fault_default.is_none()
        {
            return Delivery::Deliver {
                delay: self.sample_delay(from, to, sequence),
                duplicate: None,
                reordered: false,
            };
        }
        let delay = self.sample_delay(from, to, sequence);
        let fault = self.fault_for(from, to);
        if fault.is_none() && self.partitions.is_empty() {
            return Delivery::Deliver {
                delay,
                duplicate: None,
                reordered: false,
            };
        }
        if self.partitioned(from, to, now) {
            return Delivery::Partitioned;
        }
        if self.hit(from, to, sequence, SALT_LOSS, fault.loss) {
            return Delivery::Lost;
        }
        let reordered = self.hit(from, to, sequence, SALT_REORDER, fault.reorder);
        let delay = if reordered {
            delay + self.uniform(from, to, sequence, SALT_REORDER_DELAY, fault.reorder_window)
        } else {
            delay
        };
        let duplicate = if self.hit(from, to, sequence, SALT_DUP, fault.duplicate) {
            Some(
                self.sample_delay(from, to, sequence)
                    + self.uniform(from, to, sequence, SALT_DUP_DELAY, fault.reorder_window),
            )
        } else {
            None
        };
        Delivery::Deliver {
            delay,
            duplicate,
            reordered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_overrides() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(50)));
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        assert_eq!(links.get(a, b).latency, Duration::from_micros(50));
        links.set(a, b, LinkSpec::fixed(Duration::from_millis(2)));
        assert_eq!(links.get(a, b).latency, Duration::from_millis(2));
        // Directed: reverse still default.
        assert_eq!(links.get(b, a).latency, Duration::from_micros(50));
    }

    #[test]
    fn symmetric_override() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        links.set_symmetric(a, b, LinkSpec::fixed(Duration::from_millis(1)));
        assert_eq!(links.get(a, b), links.get(b, a));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut links = Links::with_default(LinkSpec {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(20),
        });
        links.set(
            NodeId::new(3),
            NodeId::new(4),
            LinkSpec {
                latency: Duration::from_micros(100),
                jitter: Duration::from_micros(20),
            },
        );
        let a = NodeId::new(3);
        let b = NodeId::new(4);
        let mut distinct = std::collections::HashSet::new();
        for seq in 0..100 {
            let d1 = links.sample_delay(a, b, seq);
            let d2 = links.sample_delay(a, b, seq);
            assert_eq!(d1, d2, "same sequence must give same jitter");
            assert!(d1 >= Duration::from_micros(100));
            assert!(d1 <= Duration::from_micros(120));
            distinct.insert(d1.as_nanos());
        }
        assert!(distinct.len() > 10, "jitter should actually vary");
    }

    #[test]
    fn seed_reshuffles_jitter_but_zero_matches_unseeded() {
        let spec = LinkSpec {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(50),
        };
        let unseeded = Links::with_default(spec);
        let mut zero = Links::with_default(spec);
        zero.set_seed(0);
        let mut other = Links::with_default(spec);
        other.set_seed(0xDEAD_BEEF);
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let mut differs = false;
        for seq in 0..100 {
            assert_eq!(
                unseeded.sample_delay(a, b, seq),
                zero.sample_delay(a, b, seq),
                "seed 0 must reproduce the unseeded stream"
            );
            if other.sample_delay(a, b, seq) != unseeded.sample_delay(a, b, seq) {
                differs = true;
            }
        }
        assert!(differs, "a different seed must change the jitter stream");
    }

    #[test]
    fn no_faults_reduces_to_sample_delay() {
        let links = Links::with_default(LinkSpec {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(20),
        });
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        for seq in 0..50 {
            assert_eq!(
                links.plan_delivery(a, b, seq, Instant::ZERO),
                Delivery::Deliver {
                    delay: links.sample_delay(a, b, seq),
                    duplicate: None,
                    reordered: false,
                }
            );
        }
    }

    #[test]
    fn fault_draws_are_deterministic_and_roughly_calibrated() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(10)));
        links.set_seed(42);
        links.set_fault_default(FaultSpec {
            loss: 0.10,
            duplicate: 0.10,
            reorder: 0.20,
            reorder_window: Duration::from_micros(50),
        });
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let (mut lost, mut dup, mut reord) = (0u32, 0u32, 0u32);
        for seq in 0..10_000 {
            let plan = links.plan_delivery(a, b, seq, Instant::ZERO);
            assert_eq!(plan, links.plan_delivery(a, b, seq, Instant::ZERO));
            match plan {
                Delivery::Lost => lost += 1,
                Delivery::Partitioned => panic!("no partitions configured"),
                Delivery::Deliver {
                    delay,
                    duplicate,
                    reordered,
                } => {
                    assert!(delay >= Duration::from_micros(10));
                    assert!(delay <= Duration::from_micros(60));
                    if duplicate.is_some() {
                        dup += 1;
                    }
                    if reordered {
                        reord += 1;
                    }
                }
            }
        }
        // 10k draws; dup/reorder only counted on delivered transmissions,
        // so their expectations are scaled by the 0.9 survival rate.
        assert!((900..1100).contains(&lost), "loss rate off: {lost}");
        assert!((800..1000).contains(&dup), "dup rate off: {dup}");
        assert!((1650..1950).contains(&reord), "reorder rate off: {reord}");
    }

    #[test]
    fn fault_seed_reshuffles_draws() {
        let spec = FaultSpec {
            loss: 0.5,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: Duration::ZERO,
        };
        let mut x = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        x.set_fault_default(spec);
        let mut y = x.clone();
        y.set_seed(7);
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let differs = (0..100).any(|seq| {
            x.plan_delivery(a, b, seq, Instant::ZERO) != y.plan_delivery(a, b, seq, Instant::ZERO)
        });
        assert!(differs, "a different seed must change the fault stream");
    }

    #[test]
    fn partitions_are_timed_and_bidirectional() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        let (a, b, c) = (NodeId::new(1), NodeId::new(2), NodeId::new(3));
        links.add_partition(a, b, Instant::from_micros(100), Instant::from_micros(200));
        for (from, to) in [(a, b), (b, a)] {
            assert_eq!(
                links.plan_delivery(from, to, 0, Instant::from_micros(150)),
                Delivery::Partitioned
            );
            assert!(matches!(
                links.plan_delivery(from, to, 0, Instant::from_micros(99)),
                Delivery::Deliver { .. }
            ));
            assert!(matches!(
                links.plan_delivery(from, to, 0, Instant::from_micros(200)),
                Delivery::Deliver { .. }
            ));
        }
        // Unrelated pairs pass through the window untouched.
        assert!(matches!(
            links.plan_delivery(a, c, 0, Instant::from_micros(150)),
            Delivery::Deliver { .. }
        ));
    }

    #[test]
    fn per_link_fault_overrides_win() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::ZERO));
        links.set_fault_default(FaultSpec {
            loss: 1.0,
            ..FaultSpec::NONE
        });
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        links.set_fault_symmetric(a, b, FaultSpec::NONE);
        assert!(matches!(
            links.plan_delivery(a, b, 0, Instant::ZERO),
            Delivery::Deliver { .. }
        ));
        assert!(matches!(
            links.plan_delivery(b, a, 0, Instant::ZERO),
            Delivery::Deliver { .. }
        ));
        assert_eq!(
            links.plan_delivery(a, NodeId::new(3), 0, Instant::ZERO),
            Delivery::Lost
        );
    }

    #[test]
    fn sequence_sensitivity_tracks_jitter_and_faults() {
        let mut links = Links::with_default(LinkSpec::fixed(Duration::from_micros(5)));
        assert!(!links.sequence_sensitive(), "plain fixed links draw nothing");
        // Partitions key on virtual time, not the sequence counter.
        links.add_partition(
            NodeId::new(1),
            NodeId::new(2),
            Instant::ZERO,
            Instant::from_micros(10),
        );
        assert!(!links.sequence_sensitive());
        // A jittered override flips it; replacing it with a fixed spec
        // flips it back (the counter must survive map replacement).
        let jittered = LinkSpec {
            latency: Duration::from_micros(5),
            jitter: Duration::from_micros(1),
        };
        links.set_symmetric(NodeId::new(1), NodeId::new(2), jittered);
        assert!(links.sequence_sensitive());
        links.set_symmetric(NodeId::new(1), NodeId::new(2), LinkSpec::fixed(Duration::ZERO));
        assert!(!links.sequence_sensitive());
        // Any fault probability draws on the sequence.
        links.set_fault_default(FaultSpec {
            loss: 0.1,
            ..FaultSpec::NONE
        });
        assert!(links.sequence_sensitive());
        links.set_fault_default(FaultSpec::NONE);
        assert!(!links.sequence_sensitive());
        // Conservative: any fault override counts, even a NONE one.
        links.set_fault(NodeId::new(1), NodeId::new(2), FaultSpec::NONE);
        assert!(links.sequence_sensitive());
        // Jittered defaults count too.
        let jittery_default = Links::with_default(jittered);
        assert!(jittery_default.sequence_sensitive());
    }

    #[test]
    fn zero_jitter_is_exact() {
        let links = Links::with_default(LinkSpec::fixed(Duration::from_micros(7)));
        for seq in 0..10 {
            assert_eq!(
                links.sample_delay(NodeId::new(1), NodeId::new(2), seq),
                Duration::from_micros(7)
            );
        }
    }
}
