//! Property-based tests of the geo substrate: consistent-hashing invariants
//! and geohash structure over random inputs.

use neutrino_common::{CpfId, UeId};
use neutrino_geo::{ConsistentRing, GeoHash, RingStack};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Removing any member never remaps a key whose owner is still alive.
    #[test]
    fn minimal_disruption(members in proptest::collection::hash_set(0u64..500, 2..12),
                          victim_pick in any::<proptest::sample::Index>(),
                          keys in proptest::collection::vec(any::<u64>(), 1..100)) {
        let members: Vec<CpfId> = members.into_iter().map(CpfId::new).collect();
        let mut ring = ConsistentRing::new();
        for &m in &members {
            ring.add(m);
        }
        let victim = members[victim_pick.index(members.len())];
        let before: Vec<_> = keys.iter().map(|&k| ring.primary(UeId::new(k)).unwrap()).collect();
        ring.remove(victim);
        for (&k, &was) in keys.iter().zip(&before) {
            let now = ring.primary(UeId::new(k)).unwrap();
            prop_assert_ne!(now, victim);
            if was != victim {
                prop_assert_eq!(now, was, "key {} moved although its owner lived", k);
            }
        }
    }

    /// Successor lists are distinct, ordered deterministically, and capped
    /// by membership.
    #[test]
    fn successors_invariants(members in proptest::collection::hash_set(0u64..500, 1..10),
                             key in any::<u64>(),
                             n in 0usize..12) {
        let mut ring = ConsistentRing::new();
        for &m in &members {
            ring.add(CpfId::new(m));
        }
        let succ = ring.successors(UeId::new(key), n);
        prop_assert_eq!(succ.len(), n.min(members.len()));
        let set: std::collections::HashSet<_> = succ.iter().collect();
        prop_assert_eq!(set.len(), succ.len(), "successors must be distinct");
        prop_assert_eq!(ring.successors(UeId::new(key), n), succ, "deterministic");
        if n >= 1 {
            let p = ring.primary(UeId::new(key)).unwrap();
            prop_assert_eq!(ring.successors(UeId::new(key), 1)[0], p);
        }
    }

    /// A ring stack's backups never include the primary and never include
    /// level-1 members while a level-2 ring exists.
    #[test]
    fn stack_placement(l1 in proptest::collection::hash_set(0u64..50, 1..6),
                       l2 in proptest::collection::hash_set(50u64..200, 0..12),
                       replicas in 0usize..4,
                       key in any::<u64>()) {
        let l1: Vec<CpfId> = l1.into_iter().map(CpfId::new).collect();
        let l2v: Vec<CpfId> = l2.into_iter().map(CpfId::new).collect();
        let stack = RingStack::new(&l1, &l2v, replicas);
        let ue = UeId::new(key);
        let primary = stack.primary(ue).unwrap();
        prop_assert!(l1.contains(&primary));
        let backups = stack.backups(ue);
        prop_assert!(backups.len() <= replicas);
        for b in &backups {
            prop_assert_ne!(*b, primary);
            if !l2v.is_empty() {
                prop_assert!(!l1.contains(b), "backup {} must be in level 2", b);
            }
        }
    }

    /// Geohash parent/child and containment laws.
    #[test]
    fn geohash_laws(lon in -179.9f64..179.9, lat in -89.9f64..89.9, len in 1u8..20) {
        let h = GeoHash::encode(lon, lat, len);
        prop_assert_eq!(h.len(), len);
        // Encode is idempotent on the cell center.
        let (clon, clat) = h.center();
        prop_assert_eq!(GeoHash::encode(clon, clat, len), h);
        // parent contains child; child(c).parent() round-trips.
        if let Some(p) = h.parent() {
            prop_assert!(p.contains(&h));
            prop_assert!(!h.contains(&p));
        }
        for c in 0..4 {
            if len < GeoHash::MAX_LEN {
                let child = h.child(c);
                prop_assert_eq!(child.parent(), Some(h));
                prop_assert!(h.contains(&child));
            }
        }
    }
}
