//! The edge deployment model (§4.3, Fig. 6).
//!
//! The deployment area divides into **level-1 regions** — each with multiple
//! base stations, one CTA co-located with a pool of CPFs, and UPFs — grouped
//! four-at-a-time (by geohash prefix) into **level-2 regions**.

use crate::geohash::GeoHash;
use crate::ring::RingStack;
use neutrino_common::{BsId, CpfId, CtaId, RegionId, UpfId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One level-1 region: the unit of CTA/CPF-pool deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level1Region {
    /// Region id.
    pub id: RegionId,
    /// Geohash locating the region; the parent hash names its level-2
    /// region.
    pub geohash: GeoHash,
    /// Base stations in the region.
    pub bss: Vec<BsId>,
    /// The region's control traffic aggregator.
    pub cta: CtaId,
    /// The region's CPF pool.
    pub cpfs: Vec<CpfId>,
    /// The region's UPFs.
    pub upfs: Vec<UpfId>,
}

/// Shape parameters for building a deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RegionLayout {
    /// Number of level-2 regions (each contains exactly 4 level-1 regions).
    pub level2_regions: usize,
    /// Base stations per level-1 region.
    pub bss_per_region: usize,
    /// CPFs per level-1 region (the paper's evaluation uses 5).
    pub cpfs_per_region: usize,
    /// UPFs per level-1 region.
    pub upfs_per_region: usize,
    /// Backup replica count N.
    pub replicas: usize,
}

impl Default for RegionLayout {
    fn default() -> Self {
        // Matches §5: experiments run with five CPF instances per pool.
        RegionLayout {
            level2_regions: 1,
            bss_per_region: 8,
            cpfs_per_region: 5,
            upfs_per_region: 2,
            replicas: 2,
        }
    }
}

/// A complete deployment: regions plus reverse lookups.
#[derive(Debug, Clone)]
pub struct Deployment {
    regions: Vec<Level1Region>,
    bs_to_region: HashMap<BsId, RegionId>,
    cpf_to_region: HashMap<CpfId, RegionId>,
    cta_to_region: HashMap<CtaId, RegionId>,
    layout: RegionLayout,
}

impl Deployment {
    /// Builds a deployment with contiguous ids: level-2 region `g` holds
    /// level-1 regions `4g..4g+4`, laid out on a geohash grid.
    pub fn build(layout: RegionLayout) -> Deployment {
        assert!(
            layout.level2_regions >= 1,
            "need at least one level-2 region"
        );
        assert!(layout.cpfs_per_region >= 1, "need at least one CPF");
        let mut regions = Vec::new();
        let mut next_bs = 0u64;
        let mut next_cpf = 0u64;
        let mut next_upf = 0u64;
        let mut region_id = 0u64;
        for g in 0..layout.level2_regions {
            // Each level-2 region is one level-5 geohash cell; its four
            // level-1 children are the cell's sub-cells. Bases 20° apart in
            // both axes always land in distinct level-5 cells (11.25°×5.625°).
            let base_lon = -170.0 + (g as f64 % 16.0) * 20.0;
            let base_lat = -80.0 + (g as f64 / 16.0).floor() * 20.0;
            let parent = GeoHash::encode(base_lon, base_lat, 5);
            for corner in 0..4 {
                let geohash = parent.child(corner);
                let bss = (0..layout.bss_per_region)
                    .map(|_| {
                        let id = BsId::new(next_bs);
                        next_bs += 1;
                        id
                    })
                    .collect();
                let cpfs = (0..layout.cpfs_per_region)
                    .map(|_| {
                        let id = CpfId::new(next_cpf);
                        next_cpf += 1;
                        id
                    })
                    .collect();
                let upfs = (0..layout.upfs_per_region)
                    .map(|_| {
                        let id = UpfId::new(next_upf);
                        next_upf += 1;
                        id
                    })
                    .collect();
                regions.push(Level1Region {
                    id: RegionId::new(region_id),
                    geohash,
                    bss,
                    cta: CtaId::new(region_id),
                    cpfs,
                    upfs,
                });
                region_id += 1;
            }
        }
        let mut bs_to_region = HashMap::new();
        let mut cpf_to_region = HashMap::new();
        let mut cta_to_region = HashMap::new();
        for r in &regions {
            for &bs in &r.bss {
                bs_to_region.insert(bs, r.id);
            }
            for &cpf in &r.cpfs {
                cpf_to_region.insert(cpf, r.id);
            }
            cta_to_region.insert(r.cta, r.id);
        }
        Deployment {
            regions,
            bs_to_region,
            cpf_to_region,
            cta_to_region,
            layout,
        }
    }

    /// The layout this deployment was built from.
    pub fn layout(&self) -> RegionLayout {
        self.layout
    }

    /// All level-1 regions.
    pub fn regions(&self) -> &[Level1Region] {
        &self.regions
    }

    /// A region by id.
    pub fn region(&self, id: RegionId) -> Option<&Level1Region> {
        self.regions.get(id.raw() as usize)
    }

    /// The region a base station belongs to.
    pub fn region_of_bs(&self, bs: BsId) -> Option<RegionId> {
        self.bs_to_region.get(&bs).copied()
    }

    /// The region a CPF belongs to.
    pub fn region_of_cpf(&self, cpf: CpfId) -> Option<RegionId> {
        self.cpf_to_region.get(&cpf).copied()
    }

    /// The region a CTA serves.
    pub fn region_of_cta(&self, cta: CtaId) -> Option<RegionId> {
        self.cta_to_region.get(&cta).copied()
    }

    /// The level-2 siblings of a region: the other level-1 regions sharing
    /// its geohash parent.
    pub fn level2_siblings(&self, id: RegionId) -> Vec<RegionId> {
        let me = match self.region(id) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let parent = match me.geohash.parent() {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.regions
            .iter()
            .filter(|r| r.id != id && r.geohash.parent() == Some(parent))
            .map(|r| r.id)
            .collect()
    }

    /// True when two regions share a level-2 region — fast handover is
    /// possible between them (§4.3).
    pub fn same_level2(&self, a: RegionId, b: RegionId) -> bool {
        match (self.region(a), self.region(b)) {
            (Some(ra), Some(rb)) => ra.geohash.parent() == rb.geohash.parent(),
            _ => false,
        }
    }

    /// Builds the ring stack a region's CTA holds: level-1 ring over its own
    /// CPF pool, level-2 ring over the sibling regions' CPFs.
    pub fn ring_stack(&self, id: RegionId) -> Option<RingStack> {
        let me = self.region(id)?;
        let mut others = Vec::new();
        for sib in self.level2_siblings(id) {
            if let Some(r) = self.region(sib) {
                others.extend_from_slice(&r.cpfs);
            }
        }
        Some(RingStack::new(&me.cpfs, &others, self.layout.replicas))
    }

    /// Maps a level-1 region onto one of `shards` parallel engine shards:
    /// round-robin over the contiguous region ids, so every shard hosts
    /// whole regions (a region's CTA, CPF pool and UPFs stay co-located
    /// and their 5 µs intra-region chatter never crosses a shard
    /// boundary) and populated shards stay balanced.
    pub fn shard_of_region(&self, id: RegionId, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        id.raw() as usize % shards
    }

    /// Every CPF in the deployment.
    pub fn all_cpfs(&self) -> Vec<CpfId> {
        self.regions.iter().flat_map(|r| r.cpfs.clone()).collect()
    }

    /// Every base station in the deployment.
    pub fn all_bss(&self) -> Vec<BsId> {
        self.regions.iter().flat_map(|r| r.bss.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_matches_paper() {
        let d = Deployment::build(RegionLayout::default());
        assert_eq!(d.regions().len(), 4);
        assert_eq!(d.regions()[0].cpfs.len(), 5);
    }

    #[test]
    fn level2_groups_are_quads() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 3,
            ..RegionLayout::default()
        });
        assert_eq!(d.regions().len(), 12);
        for r in d.regions() {
            let sibs = d.level2_siblings(r.id);
            assert_eq!(sibs.len(), 3, "region {} has wrong siblings", r.id);
            for s in sibs {
                assert!(d.same_level2(r.id, s));
            }
        }
    }

    #[test]
    fn shard_partition_is_balanced_and_total() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 2,
            ..RegionLayout::default()
        });
        for shards in 1..=4 {
            let mut counts = vec![0usize; shards];
            for r in d.regions() {
                let s = d.shard_of_region(r.id, shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced partition: {counts:?}");
        }
        assert_eq!(d.shard_of_region(RegionId::new(3), 1), 0);
    }

    #[test]
    fn cross_level2_regions_are_not_siblings() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 2,
            ..RegionLayout::default()
        });
        assert!(!d.same_level2(RegionId::new(0), RegionId::new(4)));
        assert!(d.same_level2(RegionId::new(0), RegionId::new(3)));
    }

    #[test]
    fn reverse_lookups_are_consistent() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 2,
            ..RegionLayout::default()
        });
        for r in d.regions() {
            for &bs in &r.bss {
                assert_eq!(d.region_of_bs(bs), Some(r.id));
            }
            for &cpf in &r.cpfs {
                assert_eq!(d.region_of_cpf(cpf), Some(r.id));
            }
            assert_eq!(d.region_of_cta(r.cta), Some(r.id));
        }
    }

    #[test]
    fn ids_are_globally_unique() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 2,
            ..RegionLayout::default()
        });
        let cpfs = d.all_cpfs();
        let set: std::collections::HashSet<_> = cpfs.iter().collect();
        assert_eq!(set.len(), cpfs.len());
        let bss = d.all_bss();
        let set: std::collections::HashSet<_> = bss.iter().collect();
        assert_eq!(set.len(), bss.len());
    }

    #[test]
    fn ring_stack_uses_sibling_cpfs_for_backups() {
        let d = Deployment::build(RegionLayout {
            level2_regions: 1,
            ..RegionLayout::default()
        });
        let stack = d.ring_stack(RegionId::new(0)).unwrap();
        let my_cpfs = &d.region(RegionId::new(0)).unwrap().cpfs;
        for ue in 0..100 {
            let ue = neutrino_common::UeId::new(ue);
            let primary = stack.primary(ue).unwrap();
            assert!(my_cpfs.contains(&primary));
            for b in stack.backups(ue) {
                assert!(!my_cpfs.contains(&b), "backups live in sibling regions");
            }
        }
    }
}
