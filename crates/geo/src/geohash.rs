//! The paper's geohash: 2 bits per character (§5, "we implemented 2 bits per
//! character version of the Geo Hashing"), so each character removed from
//! the tail quadruples the region area.
//!
//! Encoding interleaves one longitude bisection bit and one latitude
//! bisection bit per character. Characters render as `0`–`3` for
//! readability.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A geohash of up to 31 characters (62 bits).
///
/// ```
/// use neutrino_geo::GeoHash;
/// let cell = GeoHash::encode(74.35, 31.52, 6);
/// let parent = cell.parent().unwrap();
/// assert!(parent.contains(&cell));
/// assert_eq!(parent.child(cell.char_at(5).unwrap()), cell);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GeoHash {
    /// Packed 2-bit characters, most significant first.
    bits: u64,
    /// Number of characters.
    len: u8,
}

impl GeoHash {
    /// Maximum precision in characters.
    pub const MAX_LEN: u8 = 31;

    /// Encodes a (longitude, latitude) pair — degrees, lon ∈ [-180, 180),
    /// lat ∈ [-90, 90) — to `len` characters.
    pub fn encode(lon: f64, lat: f64, len: u8) -> GeoHash {
        let len = len.min(Self::MAX_LEN);
        let mut lon_range = (-180.0f64, 180.0f64);
        let mut lat_range = (-90.0f64, 90.0f64);
        let mut bits = 0u64;
        for _ in 0..len {
            let lon_mid = (lon_range.0 + lon_range.1) / 2.0;
            let lon_bit = if lon >= lon_mid {
                lon_range.0 = lon_mid;
                1
            } else {
                lon_range.1 = lon_mid;
                0
            };
            let lat_mid = (lat_range.0 + lat_range.1) / 2.0;
            let lat_bit = if lat >= lat_mid {
                lat_range.0 = lat_mid;
                1
            } else {
                lat_range.1 = lat_mid;
                0
            };
            bits = (bits << 2) | (lon_bit << 1) | lat_bit;
        }
        GeoHash { bits, len }
    }

    /// Number of characters.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-character hash (the whole world).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops the last character: the containing region, 4× larger. This is
    /// how a level-1 region maps to its level-2 region.
    pub fn parent(&self) -> Option<GeoHash> {
        if self.len == 0 {
            None
        } else {
            Some(GeoHash {
                bits: self.bits >> 2,
                len: self.len - 1,
            })
        }
    }

    /// Appends one character (0..=3): one of the four sub-cells. Inverse of
    /// [`GeoHash::parent`].
    pub fn child(&self, c: u8) -> GeoHash {
        assert!(c < 4, "geohash characters are 2 bits");
        assert!(self.len < Self::MAX_LEN, "geohash at max precision");
        GeoHash {
            bits: (self.bits << 2) | u64::from(c),
            len: self.len + 1,
        }
    }

    /// True when `self` spatially contains `other` (prefix relation).
    pub fn contains(&self, other: &GeoHash) -> bool {
        if other.len < self.len {
            return false;
        }
        (other.bits >> (2 * (other.len - self.len))) == self.bits
    }

    /// The character (0..=3) at position `i`.
    pub fn char_at(&self, i: u8) -> Option<u8> {
        if i >= self.len {
            return None;
        }
        Some(((self.bits >> (2 * (self.len - 1 - i))) & 0b11) as u8)
    }

    /// The center of this hash's cell, as (lon, lat).
    pub fn center(&self) -> (f64, f64) {
        let mut lon_range = (-180.0f64, 180.0f64);
        let mut lat_range = (-90.0f64, 90.0f64);
        for i in 0..self.len {
            let c = self.char_at(i).expect("in range");
            let lon_mid = (lon_range.0 + lon_range.1) / 2.0;
            if c & 0b10 != 0 {
                lon_range.0 = lon_mid;
            } else {
                lon_range.1 = lon_mid;
            }
            let lat_mid = (lat_range.0 + lat_range.1) / 2.0;
            if c & 0b01 != 0 {
                lat_range.0 = lat_mid;
            } else {
                lat_range.1 = lat_mid;
            }
        }
        (
            (lon_range.0 + lon_range.1) / 2.0,
            (lat_range.0 + lat_range.1) / 2.0,
        )
    }

    /// Stable numeric key (useful for hashing into rings).
    pub fn key(&self) -> u64 {
        (self.bits << 6) | u64::from(self.len)
    }
}

impl fmt::Debug for GeoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gh:")?;
        for i in 0..self.len {
            write!(f, "{}", self.char_at(i).expect("in range"))?;
        }
        Ok(())
    }
}

impl fmt::Display for GeoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_deterministic() {
        let a = GeoHash::encode(74.35, 31.52, 10); // Lahore-ish
        let b = GeoHash::encode(74.35, 31.52, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn nearby_points_share_prefixes() {
        let a = GeoHash::encode(74.350, 31.520, 12);
        let b = GeoHash::encode(74.351, 31.521, 12);
        // Truncated to coarse precision they must agree.
        let mut pa = a;
        let mut pb = b;
        while pa.len() > 6 {
            pa = pa.parent().unwrap();
            pb = pb.parent().unwrap();
        }
        assert_eq!(pa, pb);
    }

    #[test]
    fn distant_points_differ_early() {
        let lahore = GeoHash::encode(74.35, 31.52, 8);
        let nyc = GeoHash::encode(-74.0, 40.7, 8);
        assert_ne!(lahore.char_at(0), nyc.char_at(0));
    }

    #[test]
    fn parent_contains_child() {
        let child = GeoHash::encode(10.0, 50.0, 9);
        let parent = child.parent().unwrap();
        assert!(parent.contains(&child));
        assert!(!child.contains(&parent));
        assert_eq!(parent.len(), 8);
    }

    #[test]
    fn parent_region_is_4x_in_the_sibling_sense() {
        // All four children of a parent share it as a prefix; siblings with
        // different last characters are distinct but have the same parent.
        let child = GeoHash::encode(10.0, 50.0, 6);
        let parent = child.parent().unwrap();
        let mut seen = std::collections::HashSet::new();
        // Sample a grid inside the parent cell and count distinct level-6
        // hashes under it: exactly 4.
        let (clon, clat) = parent.center();
        for dl in [-0.9, 0.9] {
            for dt in [-0.45, 0.45] {
                // Offsets scaled to stay within the parent cell at level 5.
                let h = GeoHash::encode(
                    clon + dl * 360.0 / f64::from(1u32 << 6),
                    clat + dt * 180.0 / f64::from(1u32 << 6),
                    6,
                );
                if parent.contains(&h) {
                    seen.insert(h.key());
                }
            }
        }
        assert_eq!(seen.len(), 4, "a parent cell holds exactly 4 children");
    }

    #[test]
    fn contains_is_a_prefix_check() {
        let h = GeoHash::encode(0.0, 0.0, 5);
        assert!(h.contains(&h));
        let root = GeoHash { bits: 0, len: 0 };
        assert!(root.contains(&h));
    }

    #[test]
    fn center_round_trips_through_encode() {
        let h = GeoHash::encode(74.35, 31.52, 16);
        let (lon, lat) = h.center();
        let again = GeoHash::encode(lon, lat, 16);
        assert_eq!(h, again);
    }

    #[test]
    fn display_renders_characters() {
        let h = GeoHash::encode(74.35, 31.52, 4);
        let s = format!("{h}");
        assert!(s.starts_with("gh:"));
        assert_eq!(s.len(), 3 + 4);
    }
}
