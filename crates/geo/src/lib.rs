//! Geographic structure for proactive geo-replication (§4.3).
//!
//! Three pieces:
//!
//! * [`geohash`] — the paper's 2-bit-per-character geohash (one bit of
//!   longitude, one of latitude per character), so dropping one character
//!   grows the region exactly 4×: a level-2 region is the four level-1
//!   regions sharing a geohash prefix.
//! * [`region`] — the deployment model: level-1 regions (multiple BSs, one
//!   CTA, a CPF pool) grouped into level-2 regions.
//! * [`ring`] — consistent hash rings over CPFs, and the two-level
//!   [`ring::RingStack`] each CTA holds: the level-1 ring picks the primary
//!   CPF for a UE; the level-2 ring (CPFs of the level-2 region *excluding*
//!   the level-1 members) picks the N backup replicas, so a UE handing over
//!   to a neighboring region finds its state already there.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod geohash;
pub mod region;
pub mod ring;

pub use geohash::GeoHash;
pub use region::{Deployment, Level1Region, RegionLayout};
pub use ring::{ConsistentRing, MultiRing, RingStack};
