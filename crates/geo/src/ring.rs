//! Consistent hash rings over CPFs, and the two-level ring stack of §4.3.
//!
//! "Each CTA implements two consistent hash rings; (i) level-1 hash ring
//! consists of all the CPFs in the level-1 region and (ii) level-2 hash ring
//! includes all the CPFs in the level-2 region [not included in the level-1
//! ring]. When CTA receives a control message from the UE, it extracts a
//! unique user ID and hashes it to the level-1 ring to determine the primary
//! CPF. When a control procedure completes, the primary CPF replicates the
//! user state on N consecutive replicas on a level-2 ring."

use neutrino_common::{CpfId, UeId};
use std::collections::BTreeMap;

/// Virtual nodes per CPF — smooths load across the ring.
const DEFAULT_VNODES: u32 = 64;

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: well-distributed, stable across runs.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent hash ring of CPFs with virtual nodes.
#[derive(Debug, Clone, Default)]
pub struct ConsistentRing {
    /// point → CPF, ordered around the ring.
    points: BTreeMap<u64, CpfId>,
    /// Distinct members.
    members: Vec<CpfId>,
    vnodes: u32,
}

impl ConsistentRing {
    /// An empty ring with the default virtual-node count.
    pub fn new() -> Self {
        Self::with_vnodes(DEFAULT_VNODES)
    }

    /// An empty ring with an explicit virtual-node count.
    pub fn with_vnodes(vnodes: u32) -> Self {
        ConsistentRing {
            points: BTreeMap::new(),
            members: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// Adds a CPF (no-op if present).
    pub fn add(&mut self, cpf: CpfId) {
        if self.members.contains(&cpf) {
            return;
        }
        self.members.push(cpf);
        self.members.sort_unstable();
        for v in 0..self.vnodes {
            let point = mix64(cpf.raw().wrapping_mul(0x100_0000) ^ u64::from(v));
            self.points.insert(point, cpf);
        }
    }

    /// Removes a CPF (e.g. on failure) so lookups stop landing on it.
    pub fn remove(&mut self, cpf: CpfId) {
        self.members.retain(|m| *m != cpf);
        self.points.retain(|_, m| *m != cpf);
    }

    /// Members currently on the ring.
    pub fn members(&self) -> &[CpfId] {
        &self.members
    }

    /// True when no CPF is on the ring.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The CPF owning `ue` (first point clockwise of the key's hash).
    pub fn primary(&self, ue: UeId) -> Option<CpfId> {
        let key = mix64(ue.raw());
        self.points
            .range(key..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, cpf)| *cpf)
    }

    /// The first `n` *distinct* CPFs clockwise of the key — the paper's
    /// "N consecutive replicas on a level-2 ring".
    pub fn successors(&self, ue: UeId, n: usize) -> Vec<CpfId> {
        if n == 0 {
            return Vec::new();
        }
        let key = mix64(ue.raw());
        let mut out = Vec::with_capacity(n);
        for (_, cpf) in self.points.range(key..).chain(self.points.range(..key)) {
            if !out.contains(cpf) {
                out.push(*cpf);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

/// The two rings a CTA holds (§4.3), plus replica selection.
#[derive(Debug, Clone)]
pub struct RingStack {
    /// CPFs of this CTA's level-1 region: primary selection.
    pub level1: ConsistentRing,
    /// CPFs of the level-2 region *excluding* level-1 members: backup
    /// replica selection.
    pub level2: ConsistentRing,
    /// Number of backup replicas N.
    pub replicas: usize,
}

impl RingStack {
    /// Builds the stack from the CPFs of the local level-1 region and the
    /// CPFs of the rest of the level-2 region.
    pub fn new(level1_cpfs: &[CpfId], level2_other_cpfs: &[CpfId], replicas: usize) -> Self {
        let mut level1 = ConsistentRing::new();
        for &c in level1_cpfs {
            level1.add(c);
        }
        let mut level2 = ConsistentRing::new();
        for &c in level2_other_cpfs {
            // §4.3: the level-2 ring excludes CPFs already on the level-1
            // ring, so backups always land in *other* level-1 regions.
            if !level1_cpfs.contains(&c) {
                level2.add(c);
            }
        }
        RingStack {
            level1,
            level2,
            replicas,
        }
    }

    /// Primary CPF for a UE.
    pub fn primary(&self, ue: UeId) -> Option<CpfId> {
        self.level1.primary(ue)
    }

    /// Backup CPFs for a UE: N consecutive members of the level-2 ring.
    /// Falls back to other level-1 members when the level-2 ring is empty
    /// (single-region deployments), never including the primary.
    pub fn backups(&self, ue: UeId) -> Vec<CpfId> {
        if !self.level2.is_empty() {
            return self.level2.successors(ue, self.replicas);
        }
        let primary = self.primary(ue);
        self.level1
            .successors(ue, self.replicas + 1)
            .into_iter()
            .filter(|c| Some(*c) != primary)
            .take(self.replicas)
            .collect()
    }

    /// Handles a CPF failure: removes it from whichever ring holds it.
    pub fn remove(&mut self, cpf: CpfId) {
        self.level1.remove(cpf);
        self.level2.remove(cpf);
    }
}

/// An n-level generalization of [`RingStack`] — the paper's footnote 14
/// ("one can potentially implement more than 2 consistent hash rings,
/// however, there are tradeoffs. We leave this exploration for future
/// work"). Level 0 picks the primary; each further level covers a 4×
/// larger area and hosts replicas progressively farther away, trading
/// replication latency (farther backups are slower to sync) against
/// handover coverage (a UE can move farther and still find its state).
#[derive(Debug, Clone)]
pub struct MultiRing {
    /// `levels[0]` is the local pool; `levels[k]` holds the CPFs of the
    /// level-(k+1) area *excluding* every lower level's members.
    levels: Vec<ConsistentRing>,
    /// Replicas placed per non-local level.
    replicas_per_level: usize,
}

impl MultiRing {
    /// Builds the stack from per-level CPF sets (lower levels' members are
    /// filtered out of higher levels automatically).
    pub fn new(level_cpfs: &[Vec<CpfId>], replicas_per_level: usize) -> Self {
        let mut seen: Vec<CpfId> = Vec::new();
        let mut levels = Vec::with_capacity(level_cpfs.len());
        for cpfs in level_cpfs {
            let mut ring = ConsistentRing::new();
            for &c in cpfs {
                if !seen.contains(&c) {
                    ring.add(c);
                    seen.push(c);
                }
            }
            levels.push(ring);
        }
        MultiRing {
            levels,
            replicas_per_level,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The primary CPF (level 0).
    pub fn primary(&self, ue: UeId) -> Option<CpfId> {
        self.levels.first().and_then(|r| r.primary(ue))
    }

    /// Backups across every non-local level: `replicas_per_level` from each,
    /// nearest level first.
    pub fn backups(&self, ue: UeId) -> Vec<CpfId> {
        let mut out = Vec::new();
        for ring in self.levels.iter().skip(1) {
            out.extend(ring.successors(ue, self.replicas_per_level));
        }
        out
    }

    /// The level whose ring holds `cpf` (placement distance), if any.
    pub fn level_of(&self, cpf: CpfId) -> Option<usize> {
        self.levels.iter().position(|r| r.members().contains(&cpf))
    }

    /// Removes a failed CPF from every level.
    pub fn remove(&mut self, cpf: CpfId) {
        for ring in &mut self.levels {
            ring.remove(cpf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpfs(range: std::ops::Range<u64>) -> Vec<CpfId> {
        range.map(CpfId::new).collect()
    }

    #[test]
    fn primary_is_stable() {
        let mut ring = ConsistentRing::new();
        for c in cpfs(0..5) {
            ring.add(c);
        }
        for ue in 0..100 {
            let a = ring.primary(UeId::new(ue));
            let b = ring.primary(UeId::new(ue));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_spreads_across_members() {
        let mut ring = ConsistentRing::new();
        for c in cpfs(0..5) {
            ring.add(c);
        }
        let mut counts = std::collections::HashMap::new();
        for ue in 0..10_000 {
            let p = ring.primary(UeId::new(ue)).unwrap();
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5);
        for (&cpf, &n) in &counts {
            assert!(
                (1_000..4_000).contains(&n),
                "{cpf} got {n}/10000 — too skewed"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_failed_members_keys() {
        let mut ring = ConsistentRing::new();
        for c in cpfs(0..5) {
            ring.add(c);
        }
        let before: Vec<_> = (0..2_000)
            .map(|ue| ring.primary(UeId::new(ue)).unwrap())
            .collect();
        let failed = CpfId::new(2);
        ring.remove(failed);
        let mut moved_from_alive = 0;
        for (ue, &was) in before.iter().enumerate() {
            let now = ring.primary(UeId::new(ue as u64)).unwrap();
            assert_ne!(now, failed, "keys must leave the failed CPF");
            if was != failed && now != was {
                moved_from_alive += 1;
            }
        }
        assert_eq!(
            moved_from_alive, 0,
            "consistent hashing must not move keys whose owner is alive"
        );
    }

    #[test]
    fn successors_are_distinct_and_capped() {
        let mut ring = ConsistentRing::new();
        for c in cpfs(0..4) {
            ring.add(c);
        }
        for ue in 0..100 {
            let succ = ring.successors(UeId::new(ue), 3);
            assert_eq!(succ.len(), 3);
            let set: std::collections::HashSet<_> = succ.iter().collect();
            assert_eq!(set.len(), 3);
        }
        // Asking for more than membership yields all members.
        let succ = ring.successors(UeId::new(1), 10);
        assert_eq!(succ.len(), 4);
    }

    #[test]
    fn zero_successors_is_empty() {
        let mut ring = ConsistentRing::new();
        for c in cpfs(0..4) {
            ring.add(c);
        }
        assert!(ring.successors(UeId::new(1), 0).is_empty());
    }

    #[test]
    fn empty_ring_returns_none() {
        let ring = ConsistentRing::new();
        assert_eq!(ring.primary(UeId::new(1)), None);
        assert!(ring.successors(UeId::new(1), 3).is_empty());
    }

    #[test]
    fn ring_stack_backups_exclude_level1() {
        let l1 = cpfs(0..5);
        let l2: Vec<_> = cpfs(0..20); // overlapping input — stack must filter
        let stack = RingStack::new(&l1, &l2, 2);
        for ue in 0..500 {
            let ue = UeId::new(ue);
            let primary = stack.primary(ue).unwrap();
            assert!(l1.contains(&primary));
            let backups = stack.backups(ue);
            assert_eq!(backups.len(), 2);
            for b in &backups {
                assert!(!l1.contains(b), "backup {b} must be outside level-1");
                assert_ne!(*b, primary);
            }
        }
    }

    #[test]
    fn single_region_falls_back_to_level1_backups() {
        let l1 = cpfs(0..5);
        let stack = RingStack::new(&l1, &[], 2);
        for ue in 0..200 {
            let ue = UeId::new(ue);
            let primary = stack.primary(ue).unwrap();
            let backups = stack.backups(ue);
            assert_eq!(backups.len(), 2);
            assert!(!backups.contains(&primary));
        }
    }

    #[test]
    fn multi_ring_places_replicas_per_level() {
        let levels = vec![
            cpfs(0..5),   // local pool
            cpfs(5..20),  // level-2 area
            cpfs(20..80), // level-3 area
        ];
        let ring = MultiRing::new(&levels, 2);
        assert_eq!(ring.depth(), 3);
        for ue in 0..200 {
            let ue = UeId::new(ue);
            let primary = ring.primary(ue).unwrap();
            assert!(levels[0].contains(&primary));
            let backups = ring.backups(ue);
            assert_eq!(backups.len(), 4, "2 per non-local level");
            assert!(levels[1].contains(&backups[0]));
            assert!(levels[1].contains(&backups[1]));
            assert!(levels[2].contains(&backups[2]));
            assert!(levels[2].contains(&backups[3]));
        }
    }

    #[test]
    fn multi_ring_levels_filter_duplicates() {
        // Overlapping inputs: higher levels must exclude lower members.
        let ring = MultiRing::new(&[cpfs(0..5), cpfs(0..20)], 1);
        for ue in 0..100 {
            for b in ring.backups(UeId::new(ue)) {
                assert!(b.raw() >= 5, "backup {b} leaked from level 0");
            }
        }
        assert_eq!(ring.level_of(CpfId::new(3)), Some(0));
        assert_eq!(ring.level_of(CpfId::new(12)), Some(1));
        assert_eq!(ring.level_of(CpfId::new(99)), None);
    }

    #[test]
    fn stack_survives_cpf_failure() {
        let l1 = cpfs(0..3);
        let l2 = cpfs(3..12);
        let mut stack = RingStack::new(&l1, &l2, 2);
        let ue = UeId::new(42);
        let p0 = stack.primary(ue).unwrap();
        stack.remove(p0);
        let p1 = stack.primary(ue).unwrap();
        assert_ne!(p0, p1);
        assert!(l1.contains(&p1));
    }
}
