//! Exhaustive framing coverage: every [`SysMsg`] variant round-trips.
//!
//! The point of this test is the `match` in [`variant_index`]: it has **no
//! wildcard arm**, so adding a `SysMsg` variant without extending this file
//! is a *compile error* — the static-analysis `wire-contract` rule in
//! `neutrino-lint` then catches the matching gap in `framing.rs` itself.
//! Together they make a half-added frame tag (the PR 4 "tag 17" class)
//! impossible to land.

use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, SessionId, UeId, UpfId};
use neutrino_messages::control::{Envelope, MessageKind};
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::state::UeState;
use neutrino_messages::sysmsg::{
    AdmissionClass, MarkOutdated, Replay, S11Request, S11Response, SessionOp, StateSync, SyncAck,
    SyncPurpose, SysMsg,
};
use neutrino_messages::Wire;
use neutrino_net::{decode_sysmsg, encode_sysmsg};
use neutrino_codec::CodecKind;

/// Number of `SysMsg` variants the samples below must cover.
const VARIANT_COUNT: usize = 18;

/// Maps each variant to a dense index. Exhaustive **by construction**: no
/// wildcard arm, so a new variant fails to compile here until a sample (and
/// framing support) exists for it.
fn variant_index(msg: &SysMsg) -> usize {
    match msg {
        SysMsg::Control(_) => 0,
        SysMsg::StateSync(_) => 1,
        SysMsg::SyncAck(_) => 2,
        SysMsg::MarkOutdated(_) => 3,
        SysMsg::Replay(_) => 4,
        SysMsg::FetchState { .. } => 5,
        SysMsg::FetchStateResp { .. } => 6,
        SysMsg::S11(_) => 7,
        SysMsg::S11Resp(_) => 8,
        SysMsg::AskReAttach { .. } => 9,
        SysMsg::MigrationAck { .. } => 10,
        SysMsg::RelayReAttach { .. } => 11,
        SysMsg::DownlinkData { .. } => 12,
        SysMsg::DdnRequest { .. } => 13,
        SysMsg::CpfFailure { .. } => 14,
        SysMsg::ResyncRequest { .. } => 15,
        SysMsg::ResyncBehind { .. } => 16,
        SysMsg::Reject { .. } => 17,
    }
}

fn sample_envelope() -> Envelope {
    let mut e = Envelope::uplink(
        UeId::new(42),
        ProcedureId::new(3),
        ProcedureKind::ServiceRequest,
        MessageKind::ServiceRequest.sample(42),
    )
    .from_bs(BsId::new(7));
    e.via_cta = Some(CtaId::new(1));
    e.clock = ClockTick(99);
    e
}

/// One sample per variant, in declaration order.
fn samples() -> Vec<SysMsg> {
    let state = UeState::sample(11);
    vec![
        SysMsg::Control(sample_envelope()),
        SysMsg::StateSync(StateSync {
            ue: UeId::new(11),
            primary: CpfId::new(1),
            cta: CtaId::new(0),
            state: state.clone(),
            procedure: ProcedureId::new(5),
            end_clock: ClockTick(77),
            purpose: SyncPurpose::Checkpoint,
        }),
        SysMsg::SyncAck(SyncAck {
            ue: UeId::new(11),
            replica: CpfId::new(9),
            procedure: ProcedureId::new(5),
            end_clock: ClockTick(77),
        }),
        SysMsg::MarkOutdated(MarkOutdated {
            ue: UeId::new(11),
            clock: ClockTick(80),
            up_to_date: vec![CpfId::new(1), CpfId::new(2)],
        }),
        SysMsg::Replay(Replay { ue: UeId::new(42), messages: vec![sample_envelope()] }),
        SysMsg::FetchState { ue: UeId::new(11), requester: CpfId::new(2) },
        SysMsg::FetchStateResp { ue: UeId::new(11), state: Some(Box::new(state)) },
        SysMsg::S11(S11Request {
            ue: UeId::new(1),
            cpf: CpfId::new(2),
            op: SessionOp::Create,
            session: Some(SessionId::new(5)),
        }),
        SysMsg::S11Resp(S11Response {
            ue: UeId::new(1),
            op: SessionOp::Delete,
            upf: UpfId::new(3),
            session: None,
            ok: true,
        }),
        SysMsg::AskReAttach { ue: UeId::new(4) },
        SysMsg::MigrationAck { ue: UeId::new(4) },
        SysMsg::RelayReAttach { ue: UeId::new(4), bs: BsId::new(2) },
        SysMsg::DownlinkData { ue: UeId::new(4) },
        SysMsg::DdnRequest { ue: UeId::new(4), upf: UpfId::new(1) },
        SysMsg::CpfFailure { cpf: CpfId::new(3) },
        SysMsg::ResyncRequest { ue: UeId::new(4), procedure: ProcedureId::new(7), cta: CtaId::new(1) },
        SysMsg::ResyncBehind { ue: UeId::new(4), have: ProcedureId::new(2), cpf: CpfId::new(3) },
        SysMsg::Reject { ue: UeId::new(4), class: AdmissionClass::Attach, retry_after_ms: 250 },
    ]
}

#[test]
fn every_variant_round_trips_in_every_codec() {
    let samples = samples();
    // The sample list covers each variant exactly once, in order.
    let indices: Vec<usize> = samples.iter().map(variant_index).collect();
    assert_eq!(
        indices,
        (0..VARIANT_COUNT).collect::<Vec<_>>(),
        "samples() must cover every SysMsg variant exactly once, in declaration order"
    );
    for codec in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
        for msg in &samples {
            let mut frame = Vec::new();
            encode_sysmsg(msg, codec, &mut frame).unwrap_or_else(|e| {
                panic!("encode failed for {} under {codec}: {e:?}", msg.label())
            });
            let back = decode_sysmsg(&frame, codec).unwrap_or_else(|e| {
                panic!("decode failed for {} under {codec}: {e:?}", msg.label())
            });
            assert_eq!(&back, msg, "round-trip mismatch for {} under {codec}", msg.label());
        }
    }
}

#[test]
fn frame_tags_are_distinct_across_variants() {
    let samples = samples();
    let mut tags: Vec<u8> = Vec::new();
    for msg in &samples {
        let mut frame = Vec::new();
        encode_sysmsg(msg, CodecKind::FastbufOptimized, &mut frame).unwrap();
        tags.push(frame[0]);
    }
    let mut sorted = tags.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), VARIANT_COUNT, "duplicate frame tag across variants: {tags:?}");
    // Gap-free 1..=N, matching the wire-contract lint rule.
    assert_eq!(sorted, (1..=VARIANT_COUNT as u8).collect::<Vec<_>>(), "tags must be contiguous 1..=N");
}
