//! Wire framing for [`SysMsg`] over byte transports.
//!
//! Layout: a 1-byte message tag, fixed-width header fields, then the
//! payload. Control-message payloads are encoded with the *system's* codec
//! (the serialization under evaluation); state snapshots travel as fastbuf
//! regardless (replication is Neutrino-internal and not part of the ASN.1
//! comparison surface). Length-prefixed throughout so frames survive
//! stream transports.
//!
//! Encoding writes into a caller-supplied `Vec<u8>` so transports can
//! recycle frame buffers ([`neutrino_codec::scratch`]); interior payload
//! temporaries come from the same pool, keeping the steady-state encode
//! path allocation-free.

use bytes::{Buf, BufMut};
use neutrino_codec::{scratch, CodecKind, WireFormat};
use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, CpfId, CtaId, Error, ProcedureId, Result, SessionId, UeId, UpfId};
use neutrino_messages::control::{ControlMessage, Direction, Envelope, MessageKind};
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::state::UeState;
use neutrino_messages::sysmsg::{
    AdmissionClass, MarkOutdated, Replay, S11Request, S11Response, SessionOp, StateSync, SyncAck,
    SyncPurpose, SysMsg,
};
use neutrino_messages::Wire;

const TAG_CONTROL: u8 = 1;
const TAG_STATE_SYNC: u8 = 2;
const TAG_SYNC_ACK: u8 = 3;
const TAG_MARK_OUTDATED: u8 = 4;
const TAG_REPLAY: u8 = 5;
const TAG_FETCH_STATE: u8 = 6;
const TAG_FETCH_RESP: u8 = 7;
const TAG_S11: u8 = 8;
const TAG_S11_RESP: u8 = 9;
const TAG_ASK_RE_ATTACH: u8 = 10;
const TAG_MIGRATION_ACK: u8 = 11;
const TAG_RELAY_RE_ATTACH: u8 = 12;
const TAG_CPF_FAILURE: u8 = 13;
const TAG_DOWNLINK_DATA: u8 = 14;
const TAG_DDN: u8 = 15;
const TAG_RESYNC_REQUEST: u8 = 16;
const TAG_RESYNC_BEHIND: u8 = 17;
const TAG_REJECT: u8 = 18;

fn err(detail: impl Into<String>) -> Error {
    Error::codec("framing", detail.into())
}

fn kind_code(kind: MessageKind) -> u16 {
    MessageKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind enumerated") as u16
}

fn kind_from_code(code: u16) -> Result<MessageKind> {
    MessageKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| err(format!("bad message kind code {code}")))
}

fn proc_kind_code(kind: ProcedureKind) -> u8 {
    ProcedureKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind enumerated") as u8
}

fn proc_kind_from_code(code: u8) -> Result<ProcedureKind> {
    ProcedureKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| err(format!("bad procedure kind code {code}")))
}

fn put_block(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.put_u32(bytes.len() as u32);
    buf.put_slice(bytes);
}

fn get_block<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8]> {
    if buf.remaining() < 4 {
        return Err(err("truncated block length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(err("truncated block body"));
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head)
}

fn put_envelope(env: &Envelope, codec: &dyn WireFormat, buf: &mut Vec<u8>) -> Result<()> {
    buf.put_u64(env.ue.raw());
    buf.put_u64(env.procedure.raw());
    buf.put_u8(proc_kind_code(env.proc_kind));
    buf.put_u64(env.bs.raw());
    match env.via_cta {
        Some(c) => {
            buf.put_u8(1);
            buf.put_u64(c.raw());
        }
        None => buf.put_u8(0),
    }
    buf.put_u64(env.clock.raw());
    buf.put_u8(match env.direction {
        Direction::Uplink => 0,
        Direction::Downlink => 1,
    });
    buf.put_u8(u8::from(env.end_of_procedure));
    buf.put_u16(kind_code(env.msg.kind()));
    scratch::with_buf(|payload| {
        env.msg.encode(codec, payload)?;
        put_block(buf, payload);
        Ok(())
    })
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64())
}

fn take_u16(buf: &mut &[u8]) -> Result<u16> {
    need(buf, 2)?;
    Ok(buf.get_u16())
}

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_envelope(buf: &mut &[u8], codec: &dyn WireFormat) -> Result<Envelope> {
    let ue = UeId::new(take_u64(buf)?);
    let procedure = ProcedureId::new(take_u64(buf)?);
    let proc_kind = proc_kind_from_code(take_u8(buf)?)?;
    let bs = BsId::new(take_u64(buf)?);
    let via_cta = if take_u8(buf)? == 1 {
        Some(CtaId::new(take_u64(buf)?))
    } else {
        None
    };
    let clock = ClockTick(take_u64(buf)?);
    let direction = match take_u8(buf)? {
        0 => Direction::Uplink,
        1 => Direction::Downlink,
        other => return Err(err(format!("bad direction {other}"))),
    };
    let end_of_procedure = take_u8(buf)? == 1;
    let kind = kind_from_code(take_u16(buf)?)?;
    let payload = get_block(buf)?;
    let msg = ControlMessage::decode(kind, codec, payload)?;
    Ok(Envelope {
        ue,
        procedure,
        proc_kind,
        bs,
        via_cta,
        clock,
        direction,
        end_of_procedure,
        msg,
    })
}

fn put_state(state: &UeState, buf: &mut Vec<u8>) -> Result<()> {
    // State snapshots always travel as fastbuf: they are Neutrino-internal.
    let codec = neutrino_codec::fastbuf::Fastbuf::optimized();
    scratch::with_buf(|payload| {
        state.encode(&codec, payload)?;
        put_block(buf, payload);
        Ok(())
    })
}

fn get_state(buf: &mut &[u8]) -> Result<UeState> {
    let codec = neutrino_codec::fastbuf::Fastbuf::optimized();
    let payload = get_block(buf)?;
    UeState::decode(&codec, payload)
}

/// Encodes a [`SysMsg`] as a self-contained frame into `buf`.
///
/// `buf` is cleared first so callers can recycle one buffer across frames
/// (e.g. via [`scratch::with_buf`]); on error its contents are unspecified.
pub fn encode_sysmsg(msg: &SysMsg, codec_kind: CodecKind, buf: &mut Vec<u8>) -> Result<()> {
    let codec = codec_kind.instance();
    buf.clear();
    buf.reserve(64);
    match msg {
        SysMsg::Control(env) => {
            buf.put_u8(TAG_CONTROL);
            put_envelope(env, codec.as_ref(), buf)?;
        }
        SysMsg::StateSync(s) => {
            buf.put_u8(TAG_STATE_SYNC);
            buf.put_u64(s.ue.raw());
            buf.put_u64(s.primary.raw());
            buf.put_u64(s.cta.raw());
            buf.put_u64(s.procedure.raw());
            buf.put_u64(s.end_clock.raw());
            buf.put_u8(match s.purpose {
                SyncPurpose::Checkpoint => 0,
                SyncPurpose::Migration => 1,
            });
            put_state(&s.state, buf)?;
        }
        SysMsg::SyncAck(a) => {
            buf.put_u8(TAG_SYNC_ACK);
            buf.put_u64(a.ue.raw());
            buf.put_u64(a.replica.raw());
            buf.put_u64(a.procedure.raw());
            buf.put_u64(a.end_clock.raw());
        }
        SysMsg::MarkOutdated(m) => {
            buf.put_u8(TAG_MARK_OUTDATED);
            buf.put_u64(m.ue.raw());
            buf.put_u64(m.clock.raw());
            buf.put_u16(m.up_to_date.len() as u16);
            for c in &m.up_to_date {
                buf.put_u64(c.raw());
            }
        }
        SysMsg::Replay(r) => {
            buf.put_u8(TAG_REPLAY);
            buf.put_u64(r.ue.raw());
            buf.put_u32(r.messages.len() as u32);
            for env in &r.messages {
                put_envelope(env, codec.as_ref(), buf)?;
            }
        }
        SysMsg::FetchState { ue, requester } => {
            buf.put_u8(TAG_FETCH_STATE);
            buf.put_u64(ue.raw());
            buf.put_u64(requester.raw());
        }
        SysMsg::FetchStateResp { ue, state } => {
            buf.put_u8(TAG_FETCH_RESP);
            buf.put_u64(ue.raw());
            match state {
                Some(s) => {
                    buf.put_u8(1);
                    put_state(s, buf)?;
                }
                None => buf.put_u8(0),
            }
        }
        SysMsg::S11(r) => {
            buf.put_u8(TAG_S11);
            buf.put_u64(r.ue.raw());
            buf.put_u64(r.cpf.raw());
            buf.put_u8(session_op_code(r.op));
            put_opt_u64(buf, r.session.map(|s| s.raw()));
        }
        SysMsg::S11Resp(r) => {
            buf.put_u8(TAG_S11_RESP);
            buf.put_u64(r.ue.raw());
            buf.put_u8(session_op_code(r.op));
            buf.put_u64(r.upf.raw());
            put_opt_u64(buf, r.session.map(|s| s.raw()));
            buf.put_u8(u8::from(r.ok));
        }
        SysMsg::AskReAttach { ue } => {
            buf.put_u8(TAG_ASK_RE_ATTACH);
            buf.put_u64(ue.raw());
        }
        SysMsg::MigrationAck { ue } => {
            buf.put_u8(TAG_MIGRATION_ACK);
            buf.put_u64(ue.raw());
        }
        SysMsg::RelayReAttach { ue, bs } => {
            buf.put_u8(TAG_RELAY_RE_ATTACH);
            buf.put_u64(ue.raw());
            buf.put_u64(bs.raw());
        }
        SysMsg::CpfFailure { cpf } => {
            buf.put_u8(TAG_CPF_FAILURE);
            buf.put_u64(cpf.raw());
        }
        SysMsg::DownlinkData { ue } => {
            buf.put_u8(TAG_DOWNLINK_DATA);
            buf.put_u64(ue.raw());
        }
        SysMsg::DdnRequest { ue, upf } => {
            buf.put_u8(TAG_DDN);
            buf.put_u64(ue.raw());
            buf.put_u64(upf.raw());
        }
        SysMsg::ResyncRequest { ue, procedure, cta } => {
            buf.put_u8(TAG_RESYNC_REQUEST);
            buf.put_u64(ue.raw());
            buf.put_u64(procedure.raw());
            buf.put_u64(cta.raw());
        }
        SysMsg::ResyncBehind { ue, have, cpf } => {
            buf.put_u8(TAG_RESYNC_BEHIND);
            buf.put_u64(ue.raw());
            buf.put_u64(have.raw());
            buf.put_u64(cpf.raw());
        }
        SysMsg::Reject {
            ue,
            class,
            retry_after_ms,
        } => {
            buf.put_u8(TAG_REJECT);
            buf.put_u64(ue.raw());
            buf.put_u8(class.raw());
            buf.put_u64(*retry_after_ms);
        }
    }
    Ok(())
}

fn session_op_code(op: SessionOp) -> u8 {
    match op {
        SessionOp::Create => 0,
        SessionOp::Modify => 1,
        SessionOp::Delete => 2,
    }
}

fn session_op_from(code: u8) -> Result<SessionOp> {
    Ok(match code {
        0 => SessionOp::Create,
        1 => SessionOp::Modify,
        2 => SessionOp::Delete,
        other => return Err(err(format!("bad session op {other}"))),
    })
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u64(x);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_u64(buf: &mut &[u8]) -> Result<Option<u64>> {
    if buf.remaining() < 1 {
        return Err(err("truncated option"));
    }
    if buf.get_u8() == 1 {
        if buf.remaining() < 8 {
            return Err(err("truncated option body"));
        }
        Ok(Some(buf.get_u64()))
    } else {
        Ok(None)
    }
}

fn need(buf: &&[u8], n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(err("truncated frame"))
    } else {
        Ok(())
    }
}

/// Decodes a frame produced by [`encode_sysmsg`] with the same codec.
pub fn decode_sysmsg(frame: &[u8], codec_kind: CodecKind) -> Result<SysMsg> {
    let codec = codec_kind.instance();
    let mut buf = frame;
    need(&buf, 1)?;
    let tag = buf.get_u8();
    let msg = match tag {
        TAG_CONTROL => SysMsg::Control(get_envelope(&mut buf, codec.as_ref())?),
        TAG_STATE_SYNC => {
            need(&buf, 8 * 5 + 1)?;
            let ue = UeId::new(buf.get_u64());
            let primary = CpfId::new(buf.get_u64());
            let cta = CtaId::new(buf.get_u64());
            let procedure = ProcedureId::new(buf.get_u64());
            let end_clock = ClockTick(buf.get_u64());
            let purpose = match buf.get_u8() {
                0 => SyncPurpose::Checkpoint,
                1 => SyncPurpose::Migration,
                other => return Err(err(format!("bad purpose {other}"))),
            };
            let state = get_state(&mut buf)?;
            SysMsg::StateSync(StateSync {
                ue,
                primary,
                cta,
                state,
                procedure,
                end_clock,
                purpose,
            })
        }
        TAG_SYNC_ACK => {
            need(&buf, 8 * 4)?;
            SysMsg::SyncAck(SyncAck {
                ue: UeId::new(buf.get_u64()),
                replica: CpfId::new(buf.get_u64()),
                procedure: ProcedureId::new(buf.get_u64()),
                end_clock: ClockTick(buf.get_u64()),
            })
        }
        TAG_MARK_OUTDATED => {
            need(&buf, 8 * 2 + 2)?;
            let ue = UeId::new(buf.get_u64());
            let clock = ClockTick(buf.get_u64());
            let n = buf.get_u16() as usize;
            need(&buf, 8 * n)?;
            let up_to_date = (0..n).map(|_| CpfId::new(buf.get_u64())).collect();
            SysMsg::MarkOutdated(MarkOutdated {
                ue,
                clock,
                up_to_date,
            })
        }
        TAG_REPLAY => {
            need(&buf, 8 + 4)?;
            let ue = UeId::new(buf.get_u64());
            let n = buf.get_u32() as usize;
            let mut messages = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                messages.push(get_envelope(&mut buf, codec.as_ref())?);
            }
            SysMsg::Replay(Replay { ue, messages })
        }
        TAG_FETCH_STATE => {
            need(&buf, 16)?;
            SysMsg::FetchState {
                ue: UeId::new(buf.get_u64()),
                requester: CpfId::new(buf.get_u64()),
            }
        }
        TAG_FETCH_RESP => {
            need(&buf, 9)?;
            let ue = UeId::new(buf.get_u64());
            let state = if buf.get_u8() == 1 {
                Some(Box::new(get_state(&mut buf)?))
            } else {
                None
            };
            SysMsg::FetchStateResp { ue, state }
        }
        TAG_S11 => {
            need(&buf, 17)?;
            let ue = UeId::new(buf.get_u64());
            let cpf = CpfId::new(buf.get_u64());
            let op = session_op_from(buf.get_u8())?;
            let session = get_opt_u64(&mut buf)?.map(SessionId::new);
            SysMsg::S11(S11Request {
                ue,
                cpf,
                op,
                session,
            })
        }
        TAG_S11_RESP => {
            need(&buf, 17)?;
            let ue = UeId::new(buf.get_u64());
            let op = session_op_from(buf.get_u8())?;
            let upf = UpfId::new(buf.get_u64());
            let session = get_opt_u64(&mut buf)?.map(SessionId::new);
            need(&buf, 1)?;
            let ok = buf.get_u8() == 1;
            SysMsg::S11Resp(S11Response {
                ue,
                op,
                upf,
                session,
                ok,
            })
        }
        TAG_ASK_RE_ATTACH => {
            need(&buf, 8)?;
            SysMsg::AskReAttach {
                ue: UeId::new(buf.get_u64()),
            }
        }
        TAG_MIGRATION_ACK => {
            need(&buf, 8)?;
            SysMsg::MigrationAck {
                ue: UeId::new(buf.get_u64()),
            }
        }
        TAG_RELAY_RE_ATTACH => {
            need(&buf, 16)?;
            SysMsg::RelayReAttach {
                ue: UeId::new(buf.get_u64()),
                bs: BsId::new(buf.get_u64()),
            }
        }
        TAG_CPF_FAILURE => {
            need(&buf, 8)?;
            SysMsg::CpfFailure {
                cpf: CpfId::new(buf.get_u64()),
            }
        }
        TAG_DOWNLINK_DATA => {
            need(&buf, 8)?;
            SysMsg::DownlinkData {
                ue: UeId::new(buf.get_u64()),
            }
        }
        TAG_DDN => {
            need(&buf, 16)?;
            SysMsg::DdnRequest {
                ue: UeId::new(buf.get_u64()),
                upf: UpfId::new(buf.get_u64()),
            }
        }
        TAG_RESYNC_REQUEST => {
            need(&buf, 24)?;
            SysMsg::ResyncRequest {
                ue: UeId::new(buf.get_u64()),
                procedure: ProcedureId::new(buf.get_u64()),
                cta: CtaId::new(buf.get_u64()),
            }
        }
        TAG_RESYNC_BEHIND => {
            need(&buf, 24)?;
            SysMsg::ResyncBehind {
                ue: UeId::new(buf.get_u64()),
                have: ProcedureId::new(buf.get_u64()),
                cpf: CpfId::new(buf.get_u64()),
            }
        }
        TAG_REJECT => {
            need(&buf, 17)?;
            let ue = UeId::new(buf.get_u64());
            let raw = buf.get_u8();
            let class = AdmissionClass::from_raw(raw)
                .ok_or_else(|| err(format!("bad admission class {raw}")))?;
            SysMsg::Reject {
                ue,
                class,
                retry_after_ms: buf.get_u64(),
            }
        }
        other => return Err(err(format!("unknown frame tag {other}"))),
    };
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(msg: &SysMsg, codec: CodecKind) -> Result<Vec<u8>> {
        let mut frame = Vec::new();
        encode_sysmsg(msg, codec, &mut frame)?;
        Ok(frame)
    }

    fn round_trip(msg: SysMsg, codec: CodecKind) {
        let frame = encode(&msg, codec).unwrap();
        let back = decode_sysmsg(&frame, codec).unwrap();
        assert_eq!(back, msg, "codec {codec}");

        // A recycled dirty buffer must produce the identical frame.
        let mut reused = vec![0xFF; 32];
        encode_sysmsg(&msg, codec, &mut reused).unwrap();
        assert_eq!(reused, frame, "recycled buffer must be cleared first");
    }

    fn sample_envelope() -> Envelope {
        let mut e = Envelope::uplink(
            UeId::new(42),
            ProcedureId::new(3),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(42),
        )
        .from_bs(BsId::new(7));
        e.via_cta = Some(CtaId::new(1));
        e.clock = ClockTick(99);
        e
    }

    #[test]
    fn control_frames_round_trip_in_both_codecs() {
        for codec in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
            round_trip(SysMsg::Control(sample_envelope()), codec);
            round_trip(
                SysMsg::Control(
                    Envelope::downlink(
                        UeId::new(2),
                        ProcedureId::new(1),
                        ProcedureKind::InitialAttach,
                        MessageKind::InitialContextSetupRequest.sample(2),
                    )
                    .ending_procedure(),
                ),
                codec,
            );
        }
    }

    #[test]
    fn replication_frames_round_trip() {
        let state = UeState::sample(11);
        round_trip(
            SysMsg::StateSync(StateSync {
                ue: UeId::new(11),
                primary: CpfId::new(1),
                cta: CtaId::new(0),
                state: state.clone(),
                procedure: ProcedureId::new(5),
                end_clock: ClockTick(77),
                purpose: SyncPurpose::Checkpoint,
            }),
            CodecKind::FastbufOptimized,
        );
        round_trip(
            SysMsg::SyncAck(SyncAck {
                ue: UeId::new(11),
                replica: CpfId::new(9),
                procedure: ProcedureId::new(5),
                end_clock: ClockTick(77),
            }),
            CodecKind::FastbufOptimized,
        );
        round_trip(
            SysMsg::MarkOutdated(MarkOutdated {
                ue: UeId::new(11),
                clock: ClockTick(80),
                up_to_date: vec![CpfId::new(1), CpfId::new(2)],
            }),
            CodecKind::FastbufOptimized,
        );
        round_trip(
            SysMsg::FetchStateResp {
                ue: UeId::new(11),
                state: Some(Box::new(state)),
            },
            CodecKind::FastbufOptimized,
        );
        round_trip(
            SysMsg::FetchStateResp {
                ue: UeId::new(11),
                state: None,
            },
            CodecKind::FastbufOptimized,
        );
    }

    #[test]
    fn replay_frames_round_trip() {
        round_trip(
            SysMsg::Replay(Replay {
                ue: UeId::new(42),
                messages: vec![sample_envelope(), sample_envelope()],
            }),
            CodecKind::Asn1Per,
        );
    }

    #[test]
    fn s11_and_misc_frames_round_trip() {
        for op in [SessionOp::Create, SessionOp::Modify, SessionOp::Delete] {
            round_trip(
                SysMsg::S11(S11Request {
                    ue: UeId::new(1),
                    cpf: CpfId::new(2),
                    op,
                    session: Some(SessionId::new(5)),
                }),
                CodecKind::FastbufOptimized,
            );
            round_trip(
                SysMsg::S11Resp(S11Response {
                    ue: UeId::new(1),
                    op,
                    upf: UpfId::new(3),
                    session: None,
                    ok: op != SessionOp::Modify,
                }),
                CodecKind::FastbufOptimized,
            );
        }
        round_trip(SysMsg::AskReAttach { ue: UeId::new(4) }, CodecKind::Asn1Per);
        round_trip(
            SysMsg::MigrationAck { ue: UeId::new(4) },
            CodecKind::Asn1Per,
        );
        round_trip(
            SysMsg::RelayReAttach {
                ue: UeId::new(4),
                bs: BsId::new(2),
            },
            CodecKind::Asn1Per,
        );
        round_trip(
            SysMsg::CpfFailure { cpf: CpfId::new(3) },
            CodecKind::Asn1Per,
        );
        round_trip(
            SysMsg::ResyncRequest {
                ue: UeId::new(4),
                procedure: ProcedureId::new(7),
                cta: CtaId::new(1),
            },
            CodecKind::Asn1Per,
        );
        round_trip(
            SysMsg::ResyncBehind {
                ue: UeId::new(4),
                have: ProcedureId::new(2),
                cpf: CpfId::new(3),
            },
            CodecKind::Asn1Per,
        );
        for class in AdmissionClass::ALL {
            round_trip(
                SysMsg::Reject {
                    ue: UeId::new(4),
                    class: *class,
                    retry_after_ms: 250,
                },
                CodecKind::Asn1Per,
            );
        }
    }

    #[test]
    fn reject_with_bad_class_errors() {
        let mut frame = encode(
            &SysMsg::Reject {
                ue: UeId::new(4),
                class: AdmissionClass::Attach,
                retry_after_ms: 100,
            },
            CodecKind::FastbufOptimized,
        )
        .unwrap();
        frame[9] = 200;
        assert!(decode_sysmsg(&frame, CodecKind::FastbufOptimized).is_err());
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let frame = encode(
            &SysMsg::Control(sample_envelope()),
            CodecKind::FastbufOptimized,
        )
        .unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode_sysmsg(&frame[..cut], CodecKind::FastbufOptimized).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn codec_mismatch_is_detected_or_rejected() {
        let frame = encode(
            &SysMsg::Control(sample_envelope()),
            CodecKind::FastbufOptimized,
        )
        .unwrap();
        // Decoding fastbuf bytes as PER must not panic; it may error or
        // produce a different message, never UB.
        let _ = decode_sysmsg(&frame, CodecKind::Asn1Per);
    }
}
