//! A UDP transport for [`SysMsg`] frames.
//!
//! Each node binds a socket; peers are addressed by `SocketAddr`. Frames
//! come from [`crate::framing`]. Control messages fit comfortably in a
//! datagram (the largest encoded message in this model is well under 1 KiB);
//! oversized frames are rejected at send time.

use crate::framing::{decode_sysmsg, encode_sysmsg};
use neutrino_codec::{scratch, CodecKind};
use neutrino_common::{Error, Result};
use neutrino_messages::SysMsg;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Maximum frame size we will put in a datagram.
pub const MAX_FRAME: usize = 60_000;

/// A UDP endpoint speaking [`SysMsg`] frames.
#[derive(Debug)]
pub struct UdpEndpoint {
    socket: UdpSocket,
    codec: CodecKind,
}

impl UdpEndpoint {
    /// Binds to an address (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, codec: CodecKind) -> Result<UdpEndpoint> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpEndpoint { socket, codec })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.socket.local_addr()?)
    }

    /// Sends one message to a peer. The frame is built in a recycled
    /// scratch buffer, so steady-state sends do not allocate.
    pub fn send_to(&self, msg: &SysMsg, peer: SocketAddr) -> Result<()> {
        scratch::with_buf(|frame| {
            encode_sysmsg(msg, self.codec, frame)?;
            if frame.len() > MAX_FRAME {
                return Err(Error::exhausted(format!(
                    "frame of {} bytes exceeds datagram budget",
                    frame.len()
                )));
            }
            self.socket.send_to(frame, peer)?;
            Ok(())
        })
    }

    /// Receives one message, with a timeout. Returns the message and its
    /// sender. The datagram lands in a recycled scratch buffer.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(SysMsg, SocketAddr)> {
        self.socket.set_read_timeout(Some(timeout))?;
        scratch::with_buf(|buf| {
            buf.resize(MAX_FRAME, 0);
            let (n, from) = self.socket.recv_from(buf)?;
            let msg = decode_sysmsg(&buf[..n], self.codec)?;
            Ok((msg, from))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::{ProcedureId, UeId};
    use neutrino_messages::procedures::ProcedureKind;
    use neutrino_messages::{Envelope, MessageKind};

    #[test]
    fn loopback_round_trip() {
        let a = UdpEndpoint::bind("127.0.0.1:0", CodecKind::FastbufOptimized).unwrap();
        let b = UdpEndpoint::bind("127.0.0.1:0", CodecKind::FastbufOptimized).unwrap();
        let msg = SysMsg::Control(Envelope::uplink(
            UeId::new(5),
            ProcedureId::new(1),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(5),
        ));
        a.send_to(&msg, b.local_addr().unwrap()).unwrap();
        let (back, from) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(back, msg);
        assert_eq!(from, a.local_addr().unwrap());
    }

    #[test]
    fn asn1_frames_cross_the_socket_too() {
        let a = UdpEndpoint::bind("127.0.0.1:0", CodecKind::Asn1Per).unwrap();
        let b = UdpEndpoint::bind("127.0.0.1:0", CodecKind::Asn1Per).unwrap();
        let msg = SysMsg::Control(Envelope::uplink(
            UeId::new(5),
            ProcedureId::new(1),
            ProcedureKind::InitialAttach,
            MessageKind::InitialUeMessage.sample(5),
        ));
        a.send_to(&msg, b.local_addr().unwrap()).unwrap();
        let (back, _) = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(back, msg);
    }
}
