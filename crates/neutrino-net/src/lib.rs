//! Real-time drivers for the sans-IO protocol cores.
//!
//! The same [`CtaCore`](neutrino_cta::CtaCore), [`CpfCore`](neutrino_cpf::CpfCore)
//! and [`UpfCore`](neutrino_upf::UpfCore) state machines that run inside the
//! discrete-event simulator also run here, against real time and real
//! transports:
//!
//! * [`framing`] — the wire format for [`SysMsg`](neutrino_messages::SysMsg):
//!   a fixed header plus codec-encoded payloads (control messages travel in
//!   the system's configured serialization — ASN.1 PER for the EPC
//!   baselines, optimized fastbuf for Neutrino — exactly as on the paper's
//!   testbed wire).
//! * [`mesh`] — an in-process deployment: every node on its own thread,
//!   crossbeam channels as links. This is what the runnable examples use.
//! * [`udp`] — a UDP transport binding node addresses to sockets, using
//!   [`framing`]; demonstrates the cores over a real network stack.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod framing;
pub mod mesh;
pub mod udp;

pub use framing::{decode_sysmsg, encode_sysmsg};
pub use mesh::{Mesh, MeshConfig, NodeAddr};
