//! An in-process real-time deployment: every node on its own thread,
//! crossbeam channels as links.
//!
//! The mesh runs the *same* sans-IO cores as the simulator, against the
//! wall clock. When [`MeshConfig::serialize_on_wire`] is set, every message
//! is actually encoded with [`framing`](crate::framing) and decoded on the
//! receiving thread — the live path exercises the real serialization
//! engine, exactly like the paper's testbed.

use crate::framing::{decode_sysmsg, encode_sysmsg};
use crossbeam_channel::{unbounded, Receiver, Sender};
use neutrino_codec::CodecKind;
use neutrino_common::time::Instant;
use neutrino_common::{BsId, CpfId, CtaId, UpfId};
use neutrino_cpf::{CpfCore, CpfOutput};
use neutrino_cta::{CtaCore, CtaOutput};
use neutrino_messages::SysMsg;
use neutrino_upf::{UpfCore, UpfOutput};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Addresses on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeAddr {
    /// The UE/BS side (the example process itself).
    Client,
    /// A CTA.
    Cta(CtaId),
    /// A CPF.
    Cpf(CpfId),
    /// A UPF.
    Upf(UpfId),
}

enum MeshMsg {
    /// A (possibly wire-encoded) system message.
    Sys(Vec<u8>),
    /// Direct (no serialization) variant.
    Direct(Box<SysMsg>),
    Stop,
}

/// Mesh configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Codec used when messages are serialized hop-by-hop.
    pub codec: CodecKind,
    /// Encode/decode every hop through the real framing layer.
    pub serialize_on_wire: bool,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            codec: CodecKind::FastbufOptimized,
            serialize_on_wire: true,
        }
    }
}

#[derive(Clone)]
struct Router {
    config: MeshConfig,
    links: Arc<Mutex<HashMap<NodeAddr, Sender<MeshMsg>>>>,
    epoch: std::time::Instant,
}

impl Router {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&self, to: NodeAddr, msg: &SysMsg) {
        let tx = match self.links.lock().get(&to) {
            Some(tx) => tx.clone(),
            None => return, // destination gone (shutdown)
        };
        let payload = if self.config.serialize_on_wire {
            // The frame crosses a channel, so it must be owned — but one
            // Vec instead of the old BytesMut-then-copy pair.
            let mut frame = Vec::new();
            match encode_sysmsg(msg, self.config.codec, &mut frame) {
                Ok(()) => MeshMsg::Sys(frame),
                Err(_) => return,
            }
        } else {
            MeshMsg::Direct(Box::new(msg.clone()))
        };
        let _ = tx.send(payload);
    }

    fn decode(&self, m: MeshMsg) -> Option<SysMsg> {
        match m {
            MeshMsg::Sys(frame) => decode_sysmsg(&frame, self.config.codec).ok(),
            MeshMsg::Direct(msg) => Some(*msg),
            MeshMsg::Stop => None,
        }
    }
}

/// A running mesh.
pub struct Mesh {
    router: Router,
    handles: Vec<JoinHandle<()>>,
    client_rx: Receiver<MeshMsg>,
}

impl Mesh {
    /// Builds a mesh and registers the client endpoint.
    pub fn new(config: MeshConfig) -> Mesh {
        let router = Router {
            config,
            links: Arc::new(Mutex::new(HashMap::new())),
            epoch: std::time::Instant::now(),
        };
        let (tx, rx) = unbounded();
        router.links.lock().insert(NodeAddr::Client, tx);
        Mesh {
            router,
            handles: Vec::new(),
            client_rx: rx,
        }
    }

    fn register(&self, addr: NodeAddr) -> Receiver<MeshMsg> {
        let (tx, rx) = unbounded();
        self.router.links.lock().insert(addr, tx);
        rx
    }

    /// Spawns a CTA node.
    pub fn spawn_cta(&mut self, core: CtaCore) {
        let addr = NodeAddr::Cta(core.id());
        let rx = self.register(addr);
        let router = self.router.clone();
        self.handles.push(std::thread::spawn(move || {
            let mut core = core;
            for m in rx.iter() {
                let msg = match router.decode(m) {
                    Some(msg) => msg,
                    None => break,
                };
                for out in core.handle(msg, router.now()) {
                    match out {
                        CtaOutput::ToCpf { cpf, msg } => router.send(NodeAddr::Cpf(cpf), &msg),
                        CtaOutput::ToBs { msg, .. } => router.send(NodeAddr::Client, &msg),
                    }
                }
            }
        }));
    }

    /// Spawns a CPF node.
    pub fn spawn_cpf(&mut self, core: CpfCore) {
        let addr = NodeAddr::Cpf(core.id());
        let rx = self.register(addr);
        let router = self.router.clone();
        self.handles.push(std::thread::spawn(move || {
            let mut core = core;
            for m in rx.iter() {
                let msg = match router.decode(m) {
                    Some(msg) => msg,
                    None => break,
                };
                for out in core.handle(msg) {
                    match out {
                        CpfOutput::ToCta { cta, msg } => router.send(NodeAddr::Cta(cta), &msg),
                        CpfOutput::ToCpf { cpf, msg } => router.send(NodeAddr::Cpf(cpf), &msg),
                        CpfOutput::ToUpf { upf, msg } => router.send(NodeAddr::Upf(upf), &msg),
                    }
                }
            }
        }));
    }

    /// Spawns a UPF node.
    pub fn spawn_upf(&mut self, core: UpfCore) {
        let addr = NodeAddr::Upf(core.id());
        let rx = self.register(addr);
        let router = self.router.clone();
        self.handles.push(std::thread::spawn(move || {
            let mut core = core;
            for m in rx.iter() {
                let msg = match router.decode(m) {
                    Some(msg) => msg,
                    None => break,
                };
                for out in core.handle(msg) {
                    match out {
                        UpfOutput::ToCpf { cpf, msg } => router.send(NodeAddr::Cpf(cpf), &msg),
                        UpfOutput::ToCta { cta, msg } => router.send(NodeAddr::Cta(cta), &msg),
                        // Data-plane outcomes surface to the client side.
                        UpfOutput::Delivered { ue } => {
                            router.send(NodeAddr::Client, &SysMsg::DownlinkData { ue })
                        }
                        UpfOutput::Undeliverable { .. } => {}
                    }
                }
            }
        }));
    }

    /// Sends a message into the mesh (as the UE/BS side).
    pub fn send(&self, to: NodeAddr, msg: &SysMsg) {
        self.router.send(to, msg);
    }

    /// Receives the next message addressed to the client, with a timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<SysMsg> {
        let m = self.client_rx.recv_timeout(timeout).ok()?;
        match m {
            MeshMsg::Stop => None,
            other => self.router.decode(other),
        }
    }

    /// The elapsed mesh clock.
    pub fn now(&self) -> Instant {
        self.router.now()
    }

    /// Stops every node thread and joins them.
    pub fn shutdown(mut self) {
        let links: Vec<Sender<MeshMsg>> = self.router.links.lock().values().cloned().collect();
        for tx in links {
            let _ = tx.send(MeshMsg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Convenience: the ids a small single-region mesh uses.
#[derive(Debug, Clone)]
pub struct SmallDeployment {
    /// The CTA.
    pub cta: CtaId,
    /// The CPF pool.
    pub cpfs: Vec<CpfId>,
    /// The UPF.
    pub upf: UpfId,
    /// The client-side BS id.
    pub bs: BsId,
}

impl Default for SmallDeployment {
    fn default() -> Self {
        SmallDeployment {
            cta: CtaId::new(0),
            cpfs: (0..5).map(CpfId::new).collect(),
            upf: UpfId::new(0),
            bs: BsId::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::{ProcedureId, UeId};
    use neutrino_cpf::CpfConfig;
    use neutrino_cta::CtaConfig;
    use neutrino_geo::RingStack;
    use neutrino_messages::procedures::ProcedureKind;
    use neutrino_messages::{ControlMessage, Direction, Envelope, MessageKind};

    fn build_mesh(config: MeshConfig) -> (Mesh, SmallDeployment) {
        let dep = SmallDeployment::default();
        let ring = RingStack::new(&dep.cpfs, &[], 2);
        let mut mesh = Mesh::new(config);
        mesh.spawn_cta(CtaCore::new(
            CtaConfig::neutrino(dep.cta, config.codec),
            ring.clone(),
        ));
        for &cpf in &dep.cpfs {
            mesh.spawn_cpf(CpfCore::new(CpfConfig::neutrino(
                cpf,
                ring.clone(),
                vec![dep.upf],
            )));
        }
        mesh.spawn_upf(UpfCore::new(dep.upf));
        (mesh, dep)
    }

    /// Drives a full attach through the live mesh as the UE/BS.
    fn attach(mesh: &Mesh, dep: &SmallDeployment, ue: u64) {
        let timeout = std::time::Duration::from_secs(5);
        let send_ul = |kind: MessageKind, eop: bool| {
            let mut env = Envelope::uplink(
                UeId::new(ue),
                ProcedureId::new(1),
                ProcedureKind::InitialAttach,
                kind.sample(ue),
            )
            .from_bs(dep.bs);
            if eop {
                env = env.ending_procedure();
            }
            mesh.send(NodeAddr::Cta(dep.cta), &SysMsg::Control(env));
        };
        let expect_dl = |kind: MessageKind| {
            let dl = mesh.recv_timeout(timeout).expect("downlink arrives");
            match dl {
                SysMsg::Control(env) => {
                    assert_eq!(env.direction, Direction::Downlink);
                    assert_eq!(env.msg.kind(), kind);
                }
                other => panic!("unexpected {}", other.label()),
            }
        };
        send_ul(MessageKind::InitialUeMessage, false);
        expect_dl(MessageKind::AuthenticationRequest);
        send_ul(MessageKind::AuthenticationResponse, false);
        expect_dl(MessageKind::SecurityModeCommand);
        send_ul(MessageKind::SecurityModeComplete, false);
        let dl = mesh.recv_timeout(timeout).expect("ICS request arrives");
        assert!(matches!(
            dl,
            SysMsg::Control(ref env)
                if matches!(env.msg, ControlMessage::InitialContextSetupRequest(_))
        ));
        send_ul(MessageKind::InitialContextSetupResponse, false);
        send_ul(MessageKind::AttachComplete, true);
    }

    #[test]
    fn live_mesh_completes_attach_with_wire_serialization() {
        let (mesh, dep) = build_mesh(MeshConfig {
            codec: CodecKind::FastbufOptimized,
            serialize_on_wire: true,
        });
        attach(&mesh, &dep, 7);
        // A follow-up service request also completes.
        let env = Envelope::uplink(
            UeId::new(7),
            ProcedureId::new(2),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(7),
        )
        .from_bs(dep.bs);
        mesh.send(NodeAddr::Cta(dep.cta), &SysMsg::Control(env));
        let dl = mesh
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("bearer restore arrives");
        assert!(matches!(
            dl,
            SysMsg::Control(e) if e.msg.kind() == MessageKind::InitialContextSetupRequest
        ));
        mesh.shutdown();
    }

    #[test]
    fn live_mesh_works_with_asn1_wire() {
        let (mesh, dep) = build_mesh(MeshConfig {
            codec: CodecKind::Asn1Per,
            serialize_on_wire: true,
        });
        attach(&mesh, &dep, 9);
        mesh.shutdown();
    }

    #[test]
    fn stale_ue_is_asked_to_re_attach_live() {
        let (mesh, dep) = build_mesh(MeshConfig::default());
        let env = Envelope::uplink(
            UeId::new(1234),
            ProcedureId::new(5),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest.sample(1234),
        )
        .from_bs(dep.bs);
        mesh.send(NodeAddr::Cta(dep.cta), &SysMsg::Control(env));
        let resp = mesh
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("a response");
        assert!(matches!(resp, SysMsg::AskReAttach { ue } if ue == UeId::new(1234)));
        mesh.shutdown();
    }
}
