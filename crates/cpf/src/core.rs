//! The CPF state machine: generic procedure execution over the templates of
//! `neutrino-messages`, per-procedure (or per-message) state replication,
//! replica duties, and failure recovery.

use crate::store::{Freshness, StateStore};
use neutrino_common::clock::ClockTick;
use neutrino_common::{BsId, CpfId, CtaId, ProcedureId, UeId, UpfId};
use neutrino_geo::RingStack;
use neutrino_messages::control::{ControlMessage, Direction, Envelope, MessageKind};
use neutrino_messages::ies::Tai;
use neutrino_messages::procedures::ProcedureKind;
use neutrino_messages::state::UeState;
use neutrino_messages::sysmsg::{
    MarkOutdated, Replay, S11Request, S11Response, SessionOp, StateSync, SyncAck, SyncPurpose,
    SysMsg,
};
use neutrino_messages::Wire;
use std::collections::BTreeMap;

/// When UE state is checkpointed to backups (§4.2.2, ablated in Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No replication (existing EPC, DPCM, Fig. 15's "No Rep").
    None,
    /// After every control message (SkyCore, Fig. 15's "Per Msg Rep").
    PerMessage,
    /// After every completed procedure (Neutrino, Fig. 15's "Per Proc Rep").
    PerProcedure,
}

/// CPF configuration.
#[derive(Debug, Clone)]
pub struct CpfConfig {
    /// This CPF's id.
    pub id: CpfId,
    /// Replication mode.
    pub replication: ReplicationMode,
    /// The two-level ring stack for choosing backup replicas (Neutrino). In
    /// `PerMessage` mode with no rings, `peers` is broadcast to instead.
    pub ring: Option<RingStack>,
    /// Pool peers (SkyCore's broadcast set).
    pub peers: Vec<CpfId>,
    /// CPFs of sibling regions: where a handover-with-CPF-change migrates
    /// state when no ring is configured (edge deployments hand over across
    /// regions by definition).
    pub remote_peers: Vec<CpfId>,
    /// The UPFs this CPF may place sessions on.
    pub upfs: Vec<UpfId>,
    /// Refuse to serve a UE whose state is missing or marked outdated, by
    /// asking it to re-attach (§4.2.4 step 3). Neutrino: true. SkyCore
    /// serves whatever state it has: false (missing state still re-attaches;
    /// there is nothing to serve from).
    pub enforce_consistency: bool,
    /// The CTA fronting this CPF's region (unsolicited downlink routing,
    /// e.g. paging).
    pub home_cta: CtaId,
    /// DPCM \[37\]: device-provided state lets the CPF answer immediately and
    /// run the UPF session operation in parallel instead of blocking the
    /// response on it.
    pub parallel_upf: bool,
}

impl CpfConfig {
    /// Neutrino CPF: per-procedure replication onto the level-2 ring,
    /// consistency enforced.
    pub fn neutrino(id: CpfId, ring: RingStack, upfs: Vec<UpfId>) -> Self {
        CpfConfig {
            id,
            replication: ReplicationMode::PerProcedure,
            ring: Some(ring),
            peers: Vec::new(),
            remote_peers: Vec::new(),
            upfs,
            home_cta: CtaId::new(0),
            enforce_consistency: true,
            parallel_upf: false,
        }
    }

    /// Existing-EPC CPF: no replication; UEs re-attach after failures.
    pub fn epc(id: CpfId, peers: Vec<CpfId>, upfs: Vec<UpfId>) -> Self {
        CpfConfig {
            id,
            replication: ReplicationMode::None,
            ring: None,
            peers,
            remote_peers: Vec::new(),
            upfs,
            home_cta: CtaId::new(0),
            enforce_consistency: true,
            parallel_upf: false,
        }
    }

    /// SkyCore CPF: per-message broadcast to pool peers, no consistency
    /// checks.
    pub fn skycore(id: CpfId, peers: Vec<CpfId>, upfs: Vec<UpfId>) -> Self {
        CpfConfig {
            id,
            replication: ReplicationMode::PerMessage,
            ring: None,
            peers,
            remote_peers: Vec::new(),
            upfs,
            home_cta: CtaId::new(0),
            enforce_consistency: false,
            parallel_upf: false,
        }
    }
}

/// An action the CPF asks its driver to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum CpfOutput {
    /// Send to the CTA (downlink envelopes, sync ACKs, re-attach relays).
    ToCta {
        /// Destination CTA.
        cta: CtaId,
        /// Payload.
        msg: SysMsg,
    },
    /// Send to a peer CPF (state syncs, migrations, fetches).
    ToCpf {
        /// Destination CPF.
        cpf: CpfId,
        /// Payload.
        msg: SysMsg,
    },
    /// Send to a UPF (S11 session operations).
    ToUpf {
        /// Destination UPF.
        upf: UpfId,
        /// Payload.
        msg: SysMsg,
    },
}

/// Counters for tests and experiment output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpfMetrics {
    /// Control messages processed (live, not replayed).
    pub processed: u64,
    /// Messages applied during log replays.
    pub replayed: u64,
    /// Procedures completed.
    pub completed: u64,
    /// State checkpoints sent.
    pub syncs_sent: u64,
    /// State checkpoints/migrations applied as replica.
    pub syncs_applied: u64,
    /// Checkpoints ignored because the UE was marked outdated.
    pub syncs_ignored: u64,
    /// Re-attach requests issued (stale-state guard).
    pub re_attach_asked: u64,
    /// Handover state migrations performed (as source).
    pub migrations: u64,
    /// Paging messages sent (downlink-data notifications served).
    pub pages_sent: u64,
    /// Paging requests dropped for lack of consistent UE state — the §3.1
    /// reachability disruption.
    pub pages_failed: u64,
    /// Checkpoints re-sent after a CTA resync request (lost sync or ACK).
    pub resyncs_answered: u64,
    /// Duplicate uplinks that triggered a lost-downlink recovery (re-sent
    /// the pending S11 / migration sync / downlink steps).
    pub dup_uplink_nudges: u64,
    /// `SysMsg` variants delivered to this CPF that the flow contract says
    /// it never receives (misrouted traffic — counted, never silently
    /// swallowed; the flow lint pins the expected set).
    pub unexpected_msgs: u64,
}

/// What the CPF is waiting on before continuing a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    Upf { step: usize },
    Migration { step: usize },
}

/// Per-UE procedure progress.
#[derive(Debug, Clone)]
struct Progress {
    procedure: ProcedureId,
    kind: ProcedureKind,
    /// Index of the next template step not yet executed.
    next_step: usize,
    last_ul_clock: ClockTick,
    cta: CtaId,
    bs: BsId,
    waiting: Option<Waiting>,
    /// The handover state migration already happened for this procedure.
    migrated: bool,
}

/// The Control Plane Function state machine.
pub struct CpfCore {
    config: CpfConfig,
    store: StateStore,
    progress: BTreeMap<UeId, Progress>,
    metrics: CpfMetrics,
}

impl CpfCore {
    /// Creates a CPF.
    pub fn new(config: CpfConfig) -> Self {
        CpfCore {
            config,
            store: StateStore::new(),
            progress: BTreeMap::new(),
            metrics: CpfMetrics::default(),
        }
    }

    /// This CPF's id.
    pub fn id(&self) -> CpfId {
        self.config.id
    }

    /// Counters.
    pub fn metrics(&self) -> CpfMetrics {
        self.metrics
    }

    /// Read access to the state store (tests, consistency checks).
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// The backups this CPF checkpoints a UE's state to.
    pub fn backups_for(&self, ue: UeId) -> Vec<CpfId> {
        match (&self.config.ring, self.config.replication) {
            (Some(ring), _) => ring
                .backups(ue)
                .into_iter()
                .filter(|b| *b != self.config.id)
                .collect(),
            (None, ReplicationMode::PerMessage) => self
                .config
                .peers
                .iter()
                .copied()
                .filter(|p| *p != self.config.id)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The migration target for a handover with CPF change: the first
    /// level-2 backup (where a proactive replica would live), else a
    /// sibling-region CPF, else a pool peer.
    fn migration_target(&self, ue: UeId) -> Option<CpfId> {
        self.backups_for(ue)
            .first()
            .copied()
            .or_else(|| {
                self.config
                    .remote_peers
                    .get(ue.raw() as usize % self.config.remote_peers.len().max(1))
                    .copied()
            })
            .or_else(|| {
                self.config
                    .peers
                    .iter()
                    .copied()
                    .find(|p| *p != self.config.id)
            })
    }

    fn upf_for(&self, ue: UeId) -> UpfId {
        let n = self.config.upfs.len().max(1);
        *self
            .config
            .upfs
            .get(ue.raw() as usize % n)
            .unwrap_or(&UpfId::new(0))
    }

    /// Handles any system message addressed to this CPF.
    pub fn handle(&mut self, msg: SysMsg) -> Vec<CpfOutput> {
        match msg {
            SysMsg::Control(env) => self.on_control(env),
            SysMsg::StateSync(sync) => self.on_state_sync(sync),
            SysMsg::MarkOutdated(m) => self.on_mark_outdated(m),
            SysMsg::Replay(r) => self.on_replay(r),
            SysMsg::FetchState { ue, requester } => self.on_fetch_state(ue, requester),
            SysMsg::FetchStateResp { ue, state } => self.on_fetch_resp(ue, state),
            SysMsg::S11Resp(resp) => self.on_s11_resp(resp),
            SysMsg::DdnRequest { ue, .. } => self.on_ddn(ue),
            SysMsg::MigrationAck { ue } => self.on_migration_ack(ue),
            SysMsg::ResyncRequest { ue, procedure, cta } => self.on_resync(ue, procedure, cta),
            SysMsg::CpfFailure { cpf } => self.on_peer_failure(cpf),
            // lint-allow(flow-wildcard): counted — a misrouted SysMsg increments unexpected_msgs instead of vanishing
            _ => {
                self.metrics.unexpected_msgs += 1;
                Vec::new()
            }
        }
    }

    /// Membership notice: a peer CPF crashed. Take it off this CPF's ring
    /// view so checkpoints target the ring's *live* successor set — without
    /// this, primaries keep syncing to the dead peer while the CTA (whose
    /// ring was updated) expects ACKs from the new backup, and the two views
    /// never reconcile.
    pub fn on_peer_failure(&mut self, cpf: CpfId) -> Vec<CpfOutput> {
        if let Some(ring) = &mut self.config.ring {
            ring.remove(cpf);
        }
        Vec::new()
    }

    /// Processes one live uplink control message.
    pub fn on_control(&mut self, env: Envelope) -> Vec<CpfOutput> {
        self.metrics.processed += 1;
        self.process(env, false)
    }

    /// Replays logged messages to reconstruct state (§4.2.5 scenario 2).
    /// Side effects that already happened in the outside world (downlink
    /// responses, UPF operations) are suppressed; state mutations, progress
    /// tracking, and checkpointing are not.
    pub fn on_replay(&mut self, replay: Replay) -> Vec<CpfOutput> {
        let mut out = Vec::new();
        for env in replay.messages {
            self.metrics.replayed += 1;
            out.extend(self.process(env, true));
        }
        out
    }

    fn process(&mut self, env: Envelope, replaying: bool) -> Vec<CpfOutput> {
        let ue = env.ue;
        let cta = env.via_cta.unwrap_or(CtaId::new(0));
        let template = env.proc_kind.template();
        let mut out = Vec::new();

        let attach_start = matches!(
            env.proc_kind,
            ProcedureKind::InitialAttach | ProcedureKind::ReAttach
        ) && env.msg.kind() == template.steps[0].kind;

        if attach_start {
            // (Re-)attach creates fresh, consistent state (§4.2.1).
            let mut state = UeState::new(ue, env.bs, self.upf_for(ue), Tai::sample(ue.raw()));
            state.connected = true;
            self.store.put(state);
            self.progress.remove(&ue);
        } else {
            // Stale-state guard (§4.2.4 step 3): a CPF with no state — or,
            // when consistency is enforced, outdated state — must not serve.
            let has_state = self.store.get(ue).is_some();
            let servable = self.store.servable(ue);
            if !has_state || (self.config.enforce_consistency && !servable) {
                if !replaying {
                    self.metrics.re_attach_asked += 1;
                    out.push(CpfOutput::ToCta {
                        cta,
                        msg: SysMsg::RelayReAttach { ue, bs: env.bs },
                    });
                }
                return out;
            }
        }

        // Track progress; a different procedure id restarts tracking.
        let restart = self
            .progress
            .get(&ue)
            .map(|p| p.procedure != env.procedure)
            .unwrap_or(true);
        if restart {
            self.progress.insert(
                ue,
                Progress {
                    procedure: env.procedure,
                    kind: env.proc_kind,
                    next_step: 0,
                    last_ul_clock: ClockTick::ZERO,
                    cta,
                    bs: env.bs,
                    waiting: None,
                    migrated: false,
                },
            );
        }
        {
            let progress = self.progress.get_mut(&ue).expect("just ensured");
            progress.cta = cta;
            progress.bs = env.bs;
            // Locate this uplink message in the template at/after the cursor.
            let pos = template.steps[progress.next_step..]
                .iter()
                .position(|s| s.direction == Direction::Uplink && s.kind == env.msg.kind());
            match pos {
                Some(rel) => progress.next_step += rel + 1,
                None => {
                    // Not the message the cursor expects. If it duplicates an
                    // uplink step we already consumed, the UE is
                    // retransmitting because our follow-up got lost:
                    // re-issue it (pending S11, migration sync, or the
                    // downlink replies) without re-running state mutations.
                    // Anything else is out-of-order noise.
                    let matched = template.steps[..progress.next_step]
                        .iter()
                        .rposition(|s| s.direction == Direction::Uplink && s.kind == env.msg.kind());
                    if let (Some(idx), false) = (matched, replaying) {
                        self.metrics.dup_uplink_nudges += 1;
                        out.extend(self.nudge(ue, idx));
                    }
                    return out;
                }
            }
            progress.last_ul_clock = env.clock;
            progress.waiting = None;
        }
        self.apply_message(ue, &env.msg);

        // An uplink step may itself carry a UPF interaction (e.g. the
        // modify-bearer after an ICS Response). It is fire-and-forget: the
        // procedure does not block on it.
        if !replaying {
            let progress = self.progress.get(&ue).expect("present");
            let consumed = template.steps[progress.next_step - 1];
            if consumed.upf_interaction {
                let op = session_op(env.proc_kind, consumed.kind);
                let session = self.store.get(ue).and_then(|r| r.state.session);
                let upf = self
                    .store
                    .get(ue)
                    .map(|r| r.state.serving_upf)
                    .unwrap_or_else(|| self.upf_for(ue));
                out.push(CpfOutput::ToUpf {
                    upf,
                    msg: SysMsg::S11(S11Request {
                        ue,
                        cpf: self.config.id,
                        op,
                        session,
                    }),
                });
            }
        }

        if self.config.replication == ReplicationMode::PerMessage && !replaying {
            out.extend(self.checkpoint(ue, env.procedure, env.clock, cta));
        }

        out.extend(self.drive(ue, replaying));
        out
    }

    /// Emits pending downlink steps until the procedure waits or finishes.
    fn drive(&mut self, ue: UeId, replaying: bool) -> Vec<CpfOutput> {
        let mut out = Vec::new();
        loop {
            let progress = match self.progress.get_mut(&ue) {
                Some(p) => p,
                None => return out,
            };
            if progress.waiting.is_some() {
                return out;
            }
            let template = progress.kind.template();
            if progress.next_step >= template.steps.len() {
                out.extend(self.complete_procedure(ue));
                return out;
            }
            let step = template.steps[progress.next_step];
            if step.direction == Direction::Uplink {
                // Waiting for the UE/BS's next message.
                return out;
            }
            // A downlink step. Migration first (handover with CPF change),
            // then the UPF interaction, then the message itself.
            if step.requires_state_migration && !progress.migrated && !replaying {
                let step_idx = progress.next_step;
                progress.waiting = Some(Waiting::Migration { step: step_idx });
                let (procedure, cta, clock) =
                    (progress.procedure, progress.cta, progress.last_ul_clock);
                if let Some(target) = self.migration_target(ue) {
                    self.metrics.migrations += 1;
                    let state = self
                        .store
                        .get(ue)
                        .map(|r| r.state.clone())
                        .expect("serving implies state");
                    out.push(CpfOutput::ToCpf {
                        cpf: target,
                        msg: SysMsg::StateSync(StateSync {
                            ue,
                            primary: self.config.id,
                            cta,
                            state,
                            procedure,
                            end_clock: clock,
                            purpose: SyncPurpose::Migration,
                        }),
                    });
                    return out;
                }
                // Nowhere to migrate (single-CPF deployments): continue.
                let progress = self.progress.get_mut(&ue).expect("present");
                progress.waiting = None;
            }
            let progress = self.progress.get_mut(&ue).expect("present");
            let step = template.steps[progress.next_step];
            if step.upf_interaction && !replaying {
                let parallel = self.config.parallel_upf;
                if !parallel {
                    progress.waiting = Some(Waiting::Upf {
                        step: progress.next_step,
                    });
                }
                let kind = progress.kind;
                let op = session_op(kind, step.kind);
                let session = self.store.get(ue).and_then(|r| r.state.session);
                let upf = self
                    .store
                    .get(ue)
                    .map(|r| r.state.serving_upf)
                    .unwrap_or_else(|| self.upf_for(ue));
                out.push(CpfOutput::ToUpf {
                    upf,
                    msg: SysMsg::S11(S11Request {
                        ue,
                        cpf: self.config.id,
                        op,
                        session,
                    }),
                });
                if !parallel {
                    return out;
                }
                // DPCM: fall through and emit the downlink immediately.
            }
            out.extend(self.emit_downlink(ue, replaying));
        }
    }

    /// Emits the downlink message at the cursor and advances it.
    fn emit_downlink(&mut self, ue: UeId, replaying: bool) -> Vec<CpfOutput> {
        let progress = self.progress.get_mut(&ue).expect("present");
        let template = progress.kind.template();
        let step = template.steps[progress.next_step];
        debug_assert_eq!(step.direction, Direction::Downlink);
        let is_last = progress.next_step + 1 == template.steps.len();
        let mut env = Envelope::downlink(
            ue,
            progress.procedure,
            progress.kind,
            build_downlink(step.kind, ue),
        )
        .from_bs(progress.bs);
        env.via_cta = Some(progress.cta);
        if is_last {
            env = env.ending_procedure();
        }
        progress.next_step += 1;
        let cta = progress.cta;
        let mut out = Vec::new();
        if !replaying {
            out.push(CpfOutput::ToCta {
                cta,
                msg: SysMsg::Control(env),
            });
        }
        out
    }

    /// Finishes a procedure: bump the state version and checkpoint (§4.2.2).
    fn complete_procedure(&mut self, ue: UeId) -> Vec<CpfOutput> {
        let progress = match self.progress.remove(&ue) {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.metrics.completed += 1;
        let mut out = Vec::new();
        let mut detached = false;
        if let Some(rec) = self.store.get_mut(ue) {
            rec.state.commit(progress.procedure, progress.last_ul_clock);
            detached = !rec.state.attached && progress.kind == ProcedureKind::Detach;
        }
        if detached {
            self.store.remove(ue);
            return out;
        }
        if self.config.replication == ReplicationMode::PerProcedure {
            out.extend(self.checkpoint(
                ue,
                progress.procedure,
                progress.last_ul_clock,
                progress.cta,
            ));
        }
        out
    }

    /// Sends the state checkpoint to every backup.
    fn checkpoint(
        &mut self,
        ue: UeId,
        procedure: ProcedureId,
        end_clock: ClockTick,
        cta: CtaId,
    ) -> Vec<CpfOutput> {
        let state = match self.store.get(ue) {
            Some(rec) => rec.state.clone(),
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for backup in self.backups_for(ue) {
            self.metrics.syncs_sent += 1;
            out.push(CpfOutput::ToCpf {
                cpf: backup,
                msg: SysMsg::StateSync(StateSync {
                    ue,
                    primary: self.config.id,
                    cta,
                    state: state.clone(),
                    procedure,
                    end_clock,
                    purpose: SyncPurpose::Checkpoint,
                }),
            });
        }
        out
    }

    /// Replica duty: adopt a state checkpoint and ACK it (§4.2.3 steps 2–3),
    /// or adopt a migration and ACK the source CPF.
    pub fn on_state_sync(&mut self, sync: StateSync) -> Vec<CpfOutput> {
        let adopted = self.store.apply_sync(sync.state, sync.end_clock);
        if adopted {
            self.metrics.syncs_applied += 1;
        } else {
            self.metrics.syncs_ignored += 1;
        }
        match sync.purpose {
            SyncPurpose::Checkpoint => {
                if adopted {
                    vec![CpfOutput::ToCta {
                        cta: sync.cta,
                        msg: SysMsg::SyncAck(SyncAck {
                            ue: sync.ue,
                            replica: self.config.id,
                            procedure: sync.procedure,
                            end_clock: sync.end_clock,
                        }),
                    }]
                } else {
                    Vec::new()
                }
            }
            SyncPurpose::Migration => vec![CpfOutput::ToCpf {
                cpf: sync.primary,
                msg: SysMsg::MigrationAck { ue: sync.ue },
            }],
        }
    }

    /// Source-side continuation after the migration target confirmed.
    pub fn on_migration_ack(&mut self, ue: UeId) -> Vec<CpfOutput> {
        if let Some(progress) = self.progress.get_mut(&ue) {
            if matches!(progress.waiting, Some(Waiting::Migration { .. })) {
                progress.waiting = None;
                progress.migrated = true;
                return self.drive(ue, false);
            }
        }
        Vec::new()
    }

    /// CTA notice that this replica's copy is outdated (§4.2.4 steps 1a–1c):
    /// mark it and try to fetch fresh state.
    pub fn on_mark_outdated(&mut self, m: MarkOutdated) -> Vec<CpfOutput> {
        self.store.mark_outdated(m.ue, m.clock);
        match m.up_to_date.iter().find(|c| **c != self.config.id) {
            Some(holder) => vec![CpfOutput::ToCpf {
                cpf: *holder,
                msg: SysMsg::FetchState {
                    ue: m.ue,
                    requester: self.config.id,
                },
            }],
            None => Vec::new(),
        }
    }

    /// Answers a peer's state fetch.
    pub fn on_fetch_state(&mut self, ue: UeId, requester: CpfId) -> Vec<CpfOutput> {
        let state = self
            .store
            .get(ue)
            .filter(|r| r.freshness == Freshness::UpToDate)
            .map(|r| Box::new(r.state.clone()));
        vec![CpfOutput::ToCpf {
            cpf: requester,
            msg: SysMsg::FetchStateResp { ue, state },
        }]
    }

    /// Adopts a fetched state (§4.2.4 step 1c: "marks UE's state
    /// up-to-date") — unless the local copy is already newer (a checkpoint
    /// may have raced the fetch).
    pub fn on_fetch_resp(&mut self, ue: UeId, state: Option<Box<UeState>>) -> Vec<CpfOutput> {
        if let Some(state) = state {
            debug_assert_eq!(state.ue, ue);
            let newer = self
                .store
                .get(ue)
                .map(|r| state.version >= r.state.version)
                .unwrap_or(true);
            if newer {
                self.store.put(*state);
            }
        }
        Vec::new()
    }

    /// CTA → primary: a completed procedure's checkpoint is missing replica
    /// ACKs (lost sync or lost ACK) — re-send it. The *current* stored
    /// version is re-checkpointed; cumulative ACKs at the CTA make it cover
    /// the requested procedure and everything before it. When this CPF's own
    /// copy has not reached the requested procedure (it missed messages
    /// itself — e.g. the procedure's final forward was lost in transit), it
    /// reports back so the CTA can replay its log instead of re-asking
    /// forever.
    pub fn on_resync(&mut self, ue: UeId, procedure: ProcedureId, cta: CtaId) -> Vec<CpfOutput> {
        let version = match self.store.get(ue) {
            Some(rec) if rec.state.version.procedure >= procedure => rec.state.version,
            other => {
                let have = other
                    .map(|r| r.state.version.procedure)
                    .unwrap_or(ProcedureId::new(0));
                return vec![CpfOutput::ToCta {
                    cta,
                    msg: SysMsg::ResyncBehind {
                        ue,
                        have,
                        cpf: self.config.id,
                    },
                }];
            }
        };
        self.metrics.resyncs_answered += 1;
        self.checkpoint(ue, version.procedure, version.clock, cta)
    }

    /// Lost-downlink recovery: the UE retransmitted an uplink we already
    /// consumed (template step `matched_step` of its current procedure).
    /// Re-issue whatever followed it — the in-flight S11, the in-flight
    /// migration sync, or the downlink steps up to the cursor — rebuilt
    /// deterministically, with no state mutation and no cursor movement.
    fn nudge(&self, ue: UeId, matched_step: usize) -> Vec<CpfOutput> {
        let progress = match self.progress.get(&ue) {
            Some(p) => p,
            None => return Vec::new(),
        };
        match progress.waiting {
            Some(Waiting::Upf { step }) => {
                // Re-send the pending S11; session operations are idempotent
                // at the UPF.
                let kind = progress.kind;
                let op = session_op(kind, kind.template().steps[step].kind);
                let session = self.store.get(ue).and_then(|r| r.state.session);
                let upf = self
                    .store
                    .get(ue)
                    .map(|r| r.state.serving_upf)
                    .unwrap_or_else(|| self.upf_for(ue));
                vec![CpfOutput::ToUpf {
                    upf,
                    msg: SysMsg::S11(S11Request {
                        ue,
                        cpf: self.config.id,
                        op,
                        session,
                    }),
                }]
            }
            Some(Waiting::Migration { .. }) => {
                // Re-send the migration sync; adoption is version-gated at
                // the target, so a duplicate is harmless and its ACK
                // unblocks the handover.
                let (procedure, cta, clock) =
                    (progress.procedure, progress.cta, progress.last_ul_clock);
                match (self.migration_target(ue), self.store.get(ue)) {
                    (Some(target), Some(rec)) => vec![CpfOutput::ToCpf {
                        cpf: target,
                        msg: SysMsg::StateSync(StateSync {
                            ue,
                            primary: self.config.id,
                            cta,
                            state: rec.state.clone(),
                            procedure,
                            end_clock: clock,
                            purpose: SyncPurpose::Migration,
                        }),
                    }],
                    _ => Vec::new(),
                }
            }
            None => {
                // The downlink(s) between the matched step and the cursor
                // were lost in flight: rebuild and re-send them.
                let template = progress.kind.template();
                let mut out = Vec::new();
                for idx in (matched_step + 1)..progress.next_step.min(template.steps.len()) {
                    let step = template.steps[idx];
                    if step.direction != Direction::Downlink {
                        continue;
                    }
                    let mut env = Envelope::downlink(
                        ue,
                        progress.procedure,
                        progress.kind,
                        build_downlink(step.kind, ue),
                    )
                    .from_bs(progress.bs);
                    env.via_cta = Some(progress.cta);
                    if idx + 1 == template.steps.len() {
                        env = env.ending_procedure();
                    }
                    out.push(CpfOutput::ToCta {
                        cta: progress.cta,
                        msg: SysMsg::Control(env),
                    });
                }
                out
            }
        }
    }

    /// Continues a procedure after its UPF round trip.
    pub fn on_s11_resp(&mut self, resp: S11Response) -> Vec<CpfOutput> {
        let ue = resp.ue;
        if resp.op == SessionOp::Create {
            if let Some(rec) = self.store.get_mut(ue) {
                rec.state.session = resp.session;
                rec.state.serving_upf = resp.upf;
            }
        }
        if let Some(progress) = self.progress.get_mut(&ue) {
            if matches!(progress.waiting, Some(Waiting::Upf { .. })) {
                progress.waiting = None;
                let mut out = self.emit_downlink(ue, false);
                out.extend(self.drive(ue, false));
                return out;
            }
        }
        Vec::new()
    }

    /// Pages an idle UE that has downlink data waiting. Requires consistent
    /// state (the paging identity and tracking-area list live in it, §4.2.1)
    /// — without it the core cannot reach the UE (§3.1, Fig. 2).
    pub fn on_ddn(&mut self, ue: UeId) -> Vec<CpfOutput> {
        let rec = match self.store.get(ue) {
            Some(r) if self.store.servable(ue) => r,
            _ => {
                self.metrics.pages_failed += 1;
                return Vec::new();
            }
        };
        let bs = rec.state.serving_bs;
        self.metrics.pages_sent += 1;
        let mut env = Envelope::downlink(
            ue,
            ProcedureId(0), // unsolicited: outside any procedure
            ProcedureKind::ServiceRequest,
            build_downlink(MessageKind::Paging, ue),
        )
        .from_bs(bs);
        env.via_cta = None;
        vec![CpfOutput::ToCta {
            cta: self.config.home_cta,
            msg: SysMsg::Control(env),
        }]
    }

    /// State mutations per message kind.
    fn apply_message(&mut self, ue: UeId, msg: &ControlMessage) {
        let rec = match self.store.get_mut(ue) {
            Some(r) => r,
            None => return,
        };
        let state = &mut rec.state;
        match msg {
            ControlMessage::InitialUeMessage(_) | ControlMessage::AttachRequest(_) => {
                state.connected = true;
            }
            ControlMessage::AttachComplete(_) => {
                state.attached = true;
                if state.bearers.is_empty() {
                    state.bearers.push(neutrino_messages::state::BearerContext {
                        erab_id: 5,
                        qci: 9,
                        teid_uplink: (ue.raw() & 0xFFFF_FFFF) as u32,
                        teid_downlink: ((ue.raw() >> 4) & 0xFFFF_FFFF) as u32,
                    });
                }
            }
            ControlMessage::InitialContextSetupResponse(r) => {
                for item in &r.erabs_setup {
                    if !state.bearers.iter().any(|b| b.erab_id == item.erab_id) {
                        state.bearers.push(neutrino_messages::state::BearerContext {
                            erab_id: item.erab_id,
                            qci: 9,
                            teid_uplink: item.gtp_teid,
                            teid_downlink: item.gtp_teid ^ 0xFFFF,
                        });
                    }
                }
                state.connected = true;
            }
            ControlMessage::ServiceRequest(_) => {
                state.connected = true;
            }
            ControlMessage::TauRequest(r) => {
                state.tai = r.old_tai;
                if !state.tai_list.contains(&r.old_tai) {
                    state.tai_list.push(r.old_tai);
                }
            }
            ControlMessage::DetachRequest(_) => {
                state.attached = false;
                state.connected = false;
            }
            ControlMessage::HandoverNotify(n) => {
                state.tai = n.tai;
            }
            ControlMessage::UeContextReleaseComplete(_) => {
                state.connected = false;
            }
            _ => {}
        }
    }
}

/// The UPF operation a procedure's UPF step performs.
fn session_op(kind: ProcedureKind, _step_kind: MessageKind) -> SessionOp {
    match kind {
        ProcedureKind::InitialAttach | ProcedureKind::ReAttach => SessionOp::Create,
        ProcedureKind::Detach => SessionOp::Delete,
        _ => SessionOp::Modify,
    }
}

/// Builds the content of a downlink message. Contents are realistic
/// (sample-based) — the control-plane logic keys off envelopes and the state
/// store, and the serialization benchmarks measure these same layouts.
fn build_downlink(kind: MessageKind, ue: UeId) -> ControlMessage {
    kind.sample(ue.raw())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RingStack {
        let l1: Vec<CpfId> = (0..5).map(CpfId::new).collect();
        let l2: Vec<CpfId> = (5..20).map(CpfId::new).collect();
        RingStack::new(&l1, &l2, 2)
    }

    fn neutrino_cpf(id: u64) -> CpfCore {
        CpfCore::new(CpfConfig::neutrino(
            CpfId::new(id),
            ring(),
            vec![UpfId::new(0), UpfId::new(1)],
        ))
    }

    fn ul(ue: u64, proc: u64, kind: ProcedureKind, msg: MessageKind, clock: u64) -> Envelope {
        let mut e = Envelope::uplink(UeId::new(ue), ProcedureId::new(proc), kind, msg.sample(ue))
            .from_bs(BsId::new(2));
        e.clock = ClockTick(clock);
        e.via_cta = Some(CtaId::new(0));
        e
    }

    /// Drives a full attach through one CPF (including the authentication
    /// and security-mode exchanges), answering its S11 requests.
    fn run_attach(cpf: &mut CpfCore, ue: u64, proc: u64, clock0: u64) -> Vec<CpfOutput> {
        let mut all = Vec::new();
        let outs = cpf.on_control(ul(
            ue,
            proc,
            ProcedureKind::InitialAttach,
            MessageKind::InitialUeMessage,
            clock0,
        ));
        assert!(
            outs.iter().any(|o| matches!(
                o,
                CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                    if e.msg.kind() == MessageKind::AuthenticationRequest
            )),
            "attach starts with the authentication challenge: {outs:?}"
        );
        all.extend(outs);
        all.extend(cpf.on_control(ul(
            ue,
            proc,
            ProcedureKind::InitialAttach,
            MessageKind::AuthenticationResponse,
            clock0 + 1,
        )));
        let outs = cpf.on_control(ul(
            ue,
            proc,
            ProcedureKind::InitialAttach,
            MessageKind::SecurityModeComplete,
            clock0 + 2,
        ));
        // Security done: expect an S11 create.
        let s11 = outs.iter().find_map(|o| match o {
            CpfOutput::ToUpf {
                upf,
                msg: SysMsg::S11(r),
            } => Some((*upf, *r)),
            _ => None,
        });
        all.extend(outs);
        let (upf, req) = s11.expect("attach issues S11 create");
        assert_eq!(req.op, SessionOp::Create);
        all.extend(cpf.on_s11_resp(S11Response {
            ue: UeId::new(ue),
            op: SessionOp::Create,
            upf,
            session: Some(neutrino_common::SessionId::new(ue)),
            ok: true,
        }));
        all.extend(cpf.on_control(ul(
            ue,
            proc,
            ProcedureKind::InitialAttach,
            MessageKind::InitialContextSetupResponse,
            clock0 + 3,
        )));
        all.extend(cpf.on_control(ul(
            ue,
            proc,
            ProcedureKind::InitialAttach,
            MessageKind::AttachComplete,
            clock0 + 4,
        )));
        all
    }

    #[test]
    fn attach_emits_ics_request_and_checkpoints() {
        let mut cpf = neutrino_cpf(0);
        let outs = run_attach(&mut cpf, 7, 1, 10);
        // The DL Initial Context Setup Request went to the CTA.
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.direction == Direction::Downlink
                    && e.msg.kind() == MessageKind::InitialContextSetupRequest
        )));
        // Per-procedure checkpoint to both backups at completion.
        let syncs: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                CpfOutput::ToCpf {
                    cpf,
                    msg: SysMsg::StateSync(s),
                } => Some((*cpf, s.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(syncs.len(), 2, "N=2 backups");
        for (_, s) in &syncs {
            assert_eq!(s.procedure, ProcedureId::new(1));
            assert_eq!(s.end_clock, ClockTick(14), "last UL clock");
            assert!(s.state.attached);
            assert_eq!(s.purpose, SyncPurpose::Checkpoint);
        }
        assert_eq!(cpf.metrics().completed, 1);
        assert!(cpf.store().servable(UeId::new(7)));
    }

    #[test]
    fn unknown_ue_is_asked_to_re_attach() {
        let mut cpf = neutrino_cpf(0);
        let outs = cpf.on_control(ul(
            9,
            4,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            1,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta {
                msg: SysMsg::RelayReAttach { .. },
                ..
            }
        )));
        assert_eq!(cpf.metrics().re_attach_asked, 1);
    }

    #[test]
    fn outdated_state_is_not_served_when_consistency_enforced() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        cpf.on_mark_outdated(MarkOutdated {
            ue: UeId::new(7),
            clock: ClockTick(100),
            up_to_date: vec![],
        });
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            101,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta {
                msg: SysMsg::RelayReAttach { .. },
                ..
            }
        )));
    }

    #[test]
    fn replica_adopts_checkpoint_and_acks_cta() {
        let mut primary = neutrino_cpf(0);
        let mut replica = neutrino_cpf(9);
        let outs = run_attach(&mut primary, 7, 1, 10);
        let sync = outs
            .iter()
            .find_map(|o| match o {
                CpfOutput::ToCpf {
                    msg: SysMsg::StateSync(s),
                    ..
                } => Some(s.clone()),
                _ => None,
            })
            .expect("a checkpoint");
        let acks = replica.on_state_sync(sync);
        assert!(matches!(
            &acks[0],
            CpfOutput::ToCta { msg: SysMsg::SyncAck(a), .. }
                if a.procedure == ProcedureId::new(1) && a.replica == CpfId::new(9)
        ));
        assert!(replica.store().servable(UeId::new(7)));
    }

    #[test]
    fn marked_outdated_replica_ignores_stale_sync_and_fetches() {
        let mut replica = neutrino_cpf(9);
        // Replica holds version from procedure 1.
        let mut state = UeState::sample(7);
        state.ue = UeId::new(7);
        state.version = neutrino_messages::state::StateVersion {
            procedure: ProcedureId::new(1),
            clock: ClockTick(10),
        };
        replica.store.put(state.clone());
        // CTA marks it outdated at clock 20 and points at CPF 3.
        let outs = replica.on_mark_outdated(MarkOutdated {
            ue: UeId::new(7),
            clock: ClockTick(20),
            up_to_date: vec![CpfId::new(3)],
        });
        assert!(matches!(
            &outs[0],
            CpfOutput::ToCpf { cpf, msg: SysMsg::FetchState { .. } } if *cpf == CpfId::new(3)
        ));
        // A late sync whose end clock is below the mark is ignored.
        let mut stale = state.clone();
        stale.version.procedure = ProcedureId::new(2);
        let outs = replica.on_state_sync(StateSync {
            ue: UeId::new(7),
            primary: CpfId::new(0),
            cta: CtaId::new(0),
            state: stale,
            procedure: ProcedureId::new(2),
            end_clock: ClockTick(20),
            purpose: SyncPurpose::Checkpoint,
        });
        assert!(outs.is_empty(), "stale sync must not be ACKed");
        assert!(!replica.store().servable(UeId::new(7)));
        assert_eq!(replica.metrics().syncs_ignored, 1);
        // The fetch response restores freshness.
        let mut fresh = state;
        fresh.version.procedure = ProcedureId::new(2);
        fresh.version.clock = ClockTick(21);
        replica.on_fetch_resp(UeId::new(7), Some(Box::new(fresh)));
        assert!(replica.store().servable(UeId::new(7)));
    }

    #[test]
    fn handover_with_cpf_change_waits_for_migration() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::HandoverWithCpfChange,
            MessageKind::HandoverRequired,
            20,
        ));
        // Migration sync sent, no Handover Request yet.
        let mig = outs.iter().find_map(|o| match o {
            CpfOutput::ToCpf {
                cpf,
                msg: SysMsg::StateSync(s),
            } if s.purpose == SyncPurpose::Migration => Some(*cpf),
            _ => None,
        });
        let target = mig.expect("migration must start");
        assert!(!outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::HandoverRequest
        )));
        // The ack releases the Handover Request.
        let outs = cpf.on_migration_ack(UeId::new(7));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::HandoverRequest
        )));
        assert_eq!(cpf.metrics().migrations, 1);
        let _ = target;
    }

    #[test]
    fn fast_handover_needs_no_migration() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::FastHandover,
            MessageKind::HandoverRequired,
            20,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::HandoverRequest
        )));
        assert_eq!(cpf.metrics().migrations, 0);
    }

    #[test]
    fn replay_reconstructs_state_without_side_effects() {
        // Run an attach on the primary, capture the envelopes, replay them
        // on a fresh replica: the replica must end with equivalent state but
        // emit no downlink or S11 traffic.
        let mut replica = neutrino_cpf(9);
        let msgs = vec![
            ul(
                7,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::InitialUeMessage,
                8,
            ),
            ul(
                7,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::AuthenticationResponse,
                9,
            ),
            ul(
                7,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::SecurityModeComplete,
                10,
            ),
            ul(
                7,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::InitialContextSetupResponse,
                11,
            ),
            ul(
                7,
                1,
                ProcedureKind::InitialAttach,
                MessageKind::AttachComplete,
                12,
            ),
        ];
        let outs = replica.on_replay(Replay {
            ue: UeId::new(7),
            messages: msgs,
        });
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                CpfOutput::ToCta {
                    msg: SysMsg::Control(_),
                    ..
                } | CpfOutput::ToUpf { .. }
            )),
            "replay must not repeat external side effects: {outs:?}"
        );
        let rec = replica.store().get(UeId::new(7)).expect("state rebuilt");
        assert!(rec.state.attached);
        assert_eq!(rec.state.version.procedure, ProcedureId::new(1));
        assert_eq!(rec.state.version.clock, ClockTick(12));
        assert_eq!(replica.metrics().replayed, 5);
    }

    #[test]
    fn detach_removes_state() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::Detach,
            MessageKind::DetachRequest,
            20,
        ));
        // S11 delete then DL DetachAccept.
        let s11 = outs.iter().find_map(|o| match o {
            CpfOutput::ToUpf {
                msg: SysMsg::S11(r),
                ..
            } => Some(*r),
            _ => None,
        });
        assert_eq!(s11.expect("delete").op, SessionOp::Delete);
        let outs = cpf.on_s11_resp(S11Response {
            ue: UeId::new(7),
            op: SessionOp::Delete,
            upf: UpfId::new(0),
            session: None,
            ok: true,
        });
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::DetachAccept && e.end_of_procedure
        )));
        assert!(cpf.store().get(UeId::new(7)).is_none(), "state dropped");
    }

    #[test]
    fn skycore_broadcasts_on_every_message() {
        let peers: Vec<CpfId> = (0..5).map(CpfId::new).collect();
        let mut cpf = CpfCore::new(CpfConfig::skycore(
            CpfId::new(0),
            peers,
            vec![UpfId::new(0)],
        ));
        let outs = cpf.on_control(ul(
            7,
            1,
            ProcedureKind::InitialAttach,
            MessageKind::InitialUeMessage,
            1,
        ));
        let syncs = outs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    CpfOutput::ToCpf {
                        msg: SysMsg::StateSync(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(syncs, 4, "broadcast to all 4 pool peers");
    }

    #[test]
    fn epc_mode_never_replicates() {
        let mut cpf = CpfCore::new(CpfConfig::epc(
            CpfId::new(0),
            (0..5).map(CpfId::new).collect(),
            vec![UpfId::new(0)],
        ));
        let outs = run_attach(&mut cpf, 7, 1, 10);
        assert!(!outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCpf {
                msg: SysMsg::StateSync(_),
                ..
            }
        )));
        assert_eq!(cpf.metrics().syncs_sent, 0);
    }

    #[test]
    fn resync_request_re_checkpoints_current_version() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        // The CTA lost the ACKs for procedure 1 and asks again.
        let outs = cpf.handle(SysMsg::ResyncRequest {
            ue: UeId::new(7),
            procedure: ProcedureId::new(1),
            cta: CtaId::new(0),
        });
        let syncs: Vec<_> = outs
            .iter()
            .filter_map(|o| match o {
                CpfOutput::ToCpf {
                    msg: SysMsg::StateSync(s),
                    ..
                } => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(syncs.len(), 2, "re-checkpoint to both backups");
        for s in &syncs {
            assert_eq!(s.procedure, ProcedureId::new(1));
            assert_eq!(s.end_clock, ClockTick(14));
            assert_eq!(s.purpose, SyncPurpose::Checkpoint);
        }
        assert_eq!(cpf.metrics().resyncs_answered, 1);
        // A resync for a UE this CPF holds no copy of (it missed the
        // messages entirely) reports back how far behind it is, so the CTA
        // can replay its log instead of re-asking forever.
        let outs = cpf.handle(SysMsg::ResyncRequest {
            ue: UeId::new(99),
            procedure: ProcedureId::new(1),
            cta: CtaId::new(0),
        });
        assert_eq!(
            outs,
            vec![CpfOutput::ToCta {
                cta: CtaId::new(0),
                msg: SysMsg::ResyncBehind {
                    ue: UeId::new(99),
                    have: ProcedureId::new(0),
                    cpf: CpfId::new(0),
                },
            }]
        );
        assert_eq!(cpf.metrics().resyncs_answered, 1);
    }

    #[test]
    fn duplicate_uplink_re_emits_lost_downlink() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            20,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::InitialContextSetupRequest
        )));
        // The UE never saw the ICS Request and retransmits its Service
        // Request: the CPF must re-send the ICS Request, not stall.
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            20,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::InitialContextSetupRequest
        )));
        assert_eq!(cpf.metrics().dup_uplink_nudges, 1);
        // The retransmission must not have advanced the cursor: the real
        // setup response still completes the procedure.
        let completed_before = cpf.metrics().completed;
        cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::InitialContextSetupResponse,
            21,
        ));
        assert_eq!(cpf.metrics().completed, completed_before + 1);
    }

    #[test]
    fn duplicate_uplink_resends_pending_s11() {
        let mut cpf = neutrino_cpf(0);
        cpf.on_control(ul(
            7,
            1,
            ProcedureKind::InitialAttach,
            MessageKind::InitialUeMessage,
            10,
        ));
        cpf.on_control(ul(
            7,
            1,
            ProcedureKind::InitialAttach,
            MessageKind::AuthenticationResponse,
            11,
        ));
        let outs = cpf.on_control(ul(
            7,
            1,
            ProcedureKind::InitialAttach,
            MessageKind::SecurityModeComplete,
            12,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToUpf { msg: SysMsg::S11(r), .. } if r.op == SessionOp::Create
        )));
        // The S11 (or its response) was lost; the UE retransmits. The CPF is
        // still waiting on the UPF and must re-issue the create.
        let outs = cpf.on_control(ul(
            7,
            1,
            ProcedureKind::InitialAttach,
            MessageKind::SecurityModeComplete,
            12,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToUpf { msg: SysMsg::S11(r), .. } if r.op == SessionOp::Create
        )));
        assert_eq!(cpf.metrics().dup_uplink_nudges, 1);
        // The (possibly duplicate) UPF answer still resumes the procedure.
        let outs = cpf.on_s11_resp(S11Response {
            ue: UeId::new(7),
            op: SessionOp::Create,
            upf: UpfId::new(1),
            session: Some(neutrino_common::SessionId::new(7)),
            ok: true,
        });
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::InitialContextSetupRequest
        )));
    }

    #[test]
    fn service_request_flow() {
        let mut cpf = neutrino_cpf(0);
        run_attach(&mut cpf, 7, 1, 10);
        // The ICS Request goes down immediately (radio bearers first)...
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            20,
        ));
        assert!(outs.iter().any(|o| matches!(
            o,
            CpfOutput::ToCta { msg: SysMsg::Control(e), .. }
                if e.msg.kind() == MessageKind::InitialContextSetupRequest
        )));
        assert!(
            !outs.iter().any(|o| matches!(o, CpfOutput::ToUpf { .. })),
            "no S11 before the setup response (LTE ordering)"
        );
        // ...and the S11 modify-bearer follows the setup response.
        let outs = cpf.on_control(ul(
            7,
            2,
            ProcedureKind::ServiceRequest,
            MessageKind::InitialContextSetupResponse,
            21,
        ));
        let s11 = outs.iter().find_map(|o| match o {
            CpfOutput::ToUpf {
                msg: SysMsg::S11(r),
                ..
            } => Some(*r),
            _ => None,
        });
        assert_eq!(s11.expect("modify").op, SessionOp::Modify);
    }

    #[test]
    fn misrouted_sysmsg_is_counted_not_swallowed() {
        let mut cpf = neutrino_cpf(0);
        // The flow contract says a CPF never receives AskReAttach (it is a
        // CTA→UE-pop message) — it must land in the counter, not vanish.
        let outs = cpf.handle(SysMsg::AskReAttach { ue: UeId::new(7) });
        assert!(outs.is_empty());
        assert_eq!(cpf.metrics().unexpected_msgs, 1);
    }
}
