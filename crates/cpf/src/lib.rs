//! The Control Plane Function (CPF) — the re-architected MME/AMF+SMF of §4.
//!
//! A CPF (i) stores and updates UE state from UE/BS requests, (ii) creates,
//! deletes and modifies data sessions on the UPF, (iii) handles registration
//! and mobility, and (iv) checkpoints UE state onto replica CPFs on
//! procedure completion (§4.1). The same code serves as primary and backup:
//! a backup holds replicated state and is promoted simply by receiving UE
//! traffic (plus a log replay when it lags, §4.2.5).
//!
//! [`CpfCore`] is a sans-IO state machine shared by the simulator and the
//! real-time driver.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod core;
pub mod store;

pub use crate::core::{CpfConfig, CpfCore, CpfMetrics, CpfOutput, ReplicationMode};
pub use store::{Freshness, StateStore, UeRecord};
