//! The per-CPF UE state store.

use neutrino_common::clock::ClockTick;
use neutrino_common::UeId;
use neutrino_messages::state::UeState;
use std::collections::BTreeMap;

/// Whether a stored UE state may serve traffic (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Safe to serve.
    UpToDate,
    /// Marked outdated by the CTA; serving would violate Read-your-Writes.
    /// The payload is the clock at/below which incoming state syncs must be
    /// ignored ("used to ignore the reception of outdated state").
    Outdated(ClockTick),
}

/// One UE's entry in a CPF's store.
#[derive(Debug, Clone)]
pub struct UeRecord {
    /// The replicated state.
    pub state: UeState,
    /// Whether it may serve traffic.
    pub freshness: Freshness,
}

/// The store: UE id → record.
#[derive(Debug, Default)]
pub struct StateStore {
    records: BTreeMap<UeId, UeRecord>,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of UEs held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no UE is held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read access.
    pub fn get(&self, ue: UeId) -> Option<&UeRecord> {
        self.records.get(&ue)
    }

    /// Read-only iteration over every held record (invariant oracles),
    /// in UE-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&UeId, &UeRecord)> {
        self.records.iter()
    }

    /// Write access.
    pub fn get_mut(&mut self, ue: UeId) -> Option<&mut UeRecord> {
        self.records.get_mut(&ue)
    }

    /// Installs fresh state (attach, promotion, or accepted sync).
    pub fn put(&mut self, state: UeState) {
        self.records.insert(
            state.ue,
            UeRecord {
                state,
                freshness: Freshness::UpToDate,
            },
        );
    }

    /// Applies an incoming state sync: adopted unless the record was marked
    /// outdated at a clock at/after the sync's (stale checkpoint from a dead
    /// primary). Returns whether the sync was adopted.
    pub fn apply_sync(&mut self, state: UeState, end_clock: ClockTick) -> bool {
        if let Some(rec) = self.records.get_mut(&state.ue) {
            if let Freshness::Outdated(at) = rec.freshness {
                if end_clock <= at {
                    return false; // §4.2.4: ignore outdated state
                }
            }
            // Never regress to an older version.
            if state.version < rec.state.version {
                return false;
            }
        }
        self.put(state);
        true
    }

    /// Marks a UE outdated (§4.2.4 step 1b). No-op if the CPF holds nothing
    /// for the UE (it then simply has no state, which is equally unservable).
    pub fn mark_outdated(&mut self, ue: UeId, clock: ClockTick) {
        if let Some(rec) = self.records.get_mut(&ue) {
            rec.freshness = Freshness::Outdated(clock);
        }
    }

    /// Removes a UE (detach).
    pub fn remove(&mut self, ue: UeId) -> Option<UeRecord> {
        self.records.remove(&ue)
    }

    /// True when the CPF may serve this UE's traffic.
    pub fn servable(&self, ue: UeId) -> bool {
        matches!(
            self.records.get(&ue),
            Some(UeRecord {
                freshness: Freshness::UpToDate,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutrino_common::{BsId, ProcedureId, UpfId};
    use neutrino_messages::ies::Tai;
    use neutrino_messages::state::StateVersion;
    use neutrino_messages::Wire;

    fn state(ue: u64, proc: u64, clock: u64) -> UeState {
        let mut s = UeState::new(UeId::new(ue), BsId::new(0), UpfId::new(0), Tai::sample(0));
        s.version = StateVersion {
            procedure: ProcedureId::new(proc),
            clock: ClockTick(clock),
        };
        s
    }

    #[test]
    fn put_makes_servable() {
        let mut store = StateStore::new();
        assert!(!store.servable(UeId::new(1)));
        store.put(state(1, 1, 5));
        assert!(store.servable(UeId::new(1)));
    }

    #[test]
    fn outdated_blocks_serving_and_stale_syncs() {
        let mut store = StateStore::new();
        store.put(state(1, 1, 5));
        store.mark_outdated(UeId::new(1), ClockTick(10));
        assert!(!store.servable(UeId::new(1)));
        // A sync at or below the outdated clock is ignored...
        assert!(!store.apply_sync(state(1, 2, 10), ClockTick(10)));
        assert!(!store.servable(UeId::new(1)));
        // ...a later one is adopted and restores freshness.
        assert!(store.apply_sync(state(1, 2, 11), ClockTick(11)));
        assert!(store.servable(UeId::new(1)));
    }

    #[test]
    fn syncs_never_regress_versions() {
        let mut store = StateStore::new();
        store.put(state(1, 5, 50));
        assert!(!store.apply_sync(state(1, 3, 30), ClockTick(30)));
        assert_eq!(
            store.get(UeId::new(1)).unwrap().state.version.procedure,
            ProcedureId::new(5)
        );
    }

    #[test]
    fn remove_forgets() {
        let mut store = StateStore::new();
        store.put(state(1, 1, 1));
        assert!(store.remove(UeId::new(1)).is_some());
        assert!(!store.servable(UeId::new(1)));
        assert!(store.is_empty());
    }

    #[test]
    fn mark_outdated_without_state_is_noop() {
        let mut store = StateStore::new();
        store.mark_outdated(UeId::new(9), ClockTick(1));
        assert!(store.get(UeId::new(9)).is_none());
    }
}
