//! The reflection model every codec speaks.
//!
//! Real cellular stacks generate per-message encoders from ASN.1 modules;
//! here a [`Schema`] plays the role of the compiled ASN.1 module and a
//! [`Value`] is one concrete message. Message structs in `neutrino-messages`
//! convert to/from `Value`, and each wire format encodes `(Schema, Value)`
//! pairs. This keeps the seven codecs comparable: they all serialize exactly
//! the same logical content.

use neutrino_common::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// The type of one field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// Boolean.
    Bool,
    /// Unsigned integer with a natural width of 8, 16, 32 or 64 bits.
    UInt {
        /// Natural width in bits (8, 16, 32 or 64).
        bits: u8,
    },
    /// Signed integer (64-bit carrier).
    Int,
    /// Integer constrained to `lo..=hi` — PER encodes these in
    /// `ceil(log2(hi-lo+1))` bits, which is where its size advantage
    /// comes from.
    Constrained {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Enumeration with `variants` alternatives (encoded like
    /// `Constrained { lo: 0, hi: variants-1 }`).
    Enum {
        /// Number of alternatives.
        variants: u32,
    },
    /// Octet string, optionally bounded.
    Bytes {
        /// Maximum length, if bounded.
        max: Option<u32>,
    },
    /// UTF-8 string, optionally bounded (byte length).
    Utf8 {
        /// Maximum byte length, if bounded.
        max: Option<u32>,
    },
    /// Bit string, optionally bounded (bit length). ASN.1 has these
    /// natively; FlatBuffers does not (the paper lists a native bit-string
    /// type as a further possible optimization).
    BitString {
        /// Maximum bit length, if bounded.
        max_bits: Option<u32>,
    },
    /// A nested structure (ASN.1 SEQUENCE / FlatBuffers table).
    Struct(Arc<StructSchema>),
    /// Homogeneous list (ASN.1 SEQUENCE OF / FlatBuffers vector).
    List {
        /// Element type.
        elem: Box<FieldType>,
        /// Maximum element count, if bounded.
        max: Option<u32>,
    },
    /// Tagged union (ASN.1 CHOICE / FlatBuffers union). The paper's svtable
    /// optimization targets choices whose variants are single fields.
    Choice(Vec<Variant>),
    /// Present-or-absent wrapper (ASN.1 OPTIONAL).
    Optional(Box<FieldType>),
}

/// One alternative of a [`FieldType::Choice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Payload type.
    pub ty: FieldType,
}

/// One named field of a [`StructSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (for diagnostics; codecs are positional).
    pub name: String,
    /// Field type.
    pub ty: FieldType,
}

/// An ordered, named collection of fields — the message layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructSchema {
    /// Type name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<FieldDef>,
}

/// A complete message schema (a root struct).
pub type Schema = StructSchema;

impl StructSchema {
    /// Starts a schema builder.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Number of top-level fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Total number of leaf fields, recursively (used to label Fig. 18's
    /// x-axis "number of information elements").
    pub fn leaf_count(&self) -> usize {
        fn leaves(ty: &FieldType) -> usize {
            match ty {
                FieldType::Struct(s) => s.leaf_count(),
                FieldType::List { elem, .. } => leaves(elem),
                FieldType::Choice(vs) => vs.iter().map(|v| leaves(&v.ty)).max().unwrap_or(1),
                FieldType::Optional(inner) => leaves(inner),
                _ => 1,
            }
        }
        self.fields.iter().map(|f| leaves(&f.ty)).sum()
    }

    /// Checks that `value` structurally conforms to this schema.
    pub fn validate(&self, value: &Value) -> Result<()> {
        validate_type(&FieldType::Struct(Arc::new(self.clone())), value)
            .map_err(|e| Error::schema(format!("{}: {e}", self.name)))
    }

    /// True if any (possibly nested) field is a [`FieldType::Choice`].
    pub fn contains_choice(&self) -> bool {
        fn has_choice(ty: &FieldType) -> bool {
            match ty {
                FieldType::Choice(_) => true,
                FieldType::Struct(s) => s.contains_choice(),
                FieldType::List { elem, .. } => has_choice(elem),
                FieldType::Optional(inner) => has_choice(inner),
                _ => false,
            }
        }
        self.fields.iter().any(|f| has_choice(&f.ty))
    }
}

/// Fluent builder for schemas.
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    fields: Vec<FieldDef>,
}

impl SchemaBuilder {
    /// Appends a field.
    pub fn field(mut self, name: impl Into<String>, ty: FieldType) -> Self {
        self.fields.push(FieldDef {
            name: name.into(),
            ty,
        });
        self
    }

    /// Finishes the schema.
    pub fn build(self) -> StructSchema {
        StructSchema {
            name: self.name,
            fields: self.fields,
        }
    }
}

/// One concrete message (or sub-message) conforming to a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (also carries `UInt`, `Enum` and non-negative
    /// `Constrained` content).
    U64(u64),
    /// Signed integer (carries `Int` and negative `Constrained` content).
    I64(i64),
    /// Octet string.
    Bytes(Vec<u8>),
    /// UTF-8 string.
    Str(String),
    /// Bit string.
    Bits(Vec<bool>),
    /// Struct fields, positionally matching the schema.
    Struct(Vec<Value>),
    /// List elements.
    List(Vec<Value>),
    /// Chosen union variant.
    Choice {
        /// Index of the chosen variant.
        index: u32,
        /// Payload.
        value: Box<Value>,
    },
    /// Present-or-absent field.
    Optional(Option<Box<Value>>),
}

impl Value {
    /// Convenience constructor for a present optional.
    pub fn some(v: Value) -> Value {
        Value::Optional(Some(Box::new(v)))
    }

    /// Convenience constructor for an absent optional.
    pub fn none() -> Value {
        Value::Optional(None)
    }

    /// Convenience constructor for a choice.
    pub fn choice(index: u32, v: Value) -> Value {
        Value::Choice {
            index,
            value: Box::new(v),
        }
    }

    /// Extracts a `u64`, unwrapping through `Optional`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            Value::Optional(Some(inner)) => inner.as_u64(),
            _ => None,
        }
    }

    /// Extracts struct fields.
    pub fn as_struct(&self) -> Option<&[Value]> {
        match self {
            Value::Struct(fs) => Some(fs),
            _ => None,
        }
    }
}

/// Reads the constrained-integer carrier for a value (`U64` or `I64`).
pub(crate) fn integer_carrier(value: &Value) -> Option<i64> {
    match value {
        Value::U64(x) => i64::try_from(*x).ok(),
        Value::I64(x) => Some(*x),
        _ => None,
    }
}

fn validate_type(ty: &FieldType, value: &Value) -> Result<(), String> {
    match (ty, value) {
        (FieldType::Bool, Value::Bool(_)) => Ok(()),
        (FieldType::UInt { bits }, Value::U64(x)) => {
            if *bits < 64 && *x >= 1u64 << bits {
                Err(format!("u{bits} out of range: {x}"))
            } else {
                Ok(())
            }
        }
        (FieldType::Int, Value::I64(_)) => Ok(()),
        (FieldType::Constrained { lo, hi }, v) => {
            let x = integer_carrier(v).ok_or("constrained field is not an integer")?;
            if x < *lo || x > *hi {
                Err(format!("constrained int {x} outside [{lo}, {hi}]"))
            } else {
                Ok(())
            }
        }
        (FieldType::Enum { variants }, Value::U64(x)) => {
            if *x >= u64::from(*variants) {
                Err(format!("enum value {x} >= {variants}"))
            } else {
                Ok(())
            }
        }
        (FieldType::Bytes { max }, Value::Bytes(bs)) => check_len(bs.len(), *max, "bytes"),
        (FieldType::Utf8 { max }, Value::Str(s)) => check_len(s.len(), *max, "string"),
        (FieldType::BitString { max_bits }, Value::Bits(bits)) => {
            check_len(bits.len(), *max_bits, "bit string")
        }
        (FieldType::Struct(schema), Value::Struct(fields)) => {
            if schema.fields.len() != fields.len() {
                return Err(format!(
                    "struct {} expects {} fields, got {}",
                    schema.name,
                    schema.fields.len(),
                    fields.len()
                ));
            }
            for (def, val) in schema.fields.iter().zip(fields) {
                validate_type(&def.ty, val).map_err(|e| format!("{}: {e}", def.name))?;
            }
            Ok(())
        }
        (FieldType::List { elem, max }, Value::List(items)) => {
            check_len(items.len(), *max, "list")?;
            for (i, item) in items.iter().enumerate() {
                validate_type(elem, item).map_err(|e| format!("[{i}]: {e}"))?;
            }
            Ok(())
        }
        (FieldType::Choice(variants), Value::Choice { index, value }) => {
            let var = variants
                .get(*index as usize)
                .ok_or_else(|| format!("choice index {index} out of range"))?;
            validate_type(&var.ty, value).map_err(|e| format!("{}: {e}", var.name))
        }
        (FieldType::Optional(inner), Value::Optional(opt)) => match opt {
            None => Ok(()),
            Some(v) => validate_type(inner, v),
        },
        (ty, v) => Err(format!("type mismatch: schema {ty:?} vs value {v:?}")),
    }
}

fn check_len(len: usize, max: Option<u32>, what: &str) -> Result<(), String> {
    match max {
        Some(m) if len > m as usize => Err(format!("{what} length {len} exceeds max {m}")),
        _ => Ok(()),
    }
}

impl fmt::Display for StructSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} fields)", self.name, self.fields.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        StructSchema::builder("Test")
            .field("flag", FieldType::Bool)
            .field("id", FieldType::UInt { bits: 32 })
            .field("kind", FieldType::Enum { variants: 4 })
            .field("tac", FieldType::Constrained { lo: 0, hi: 65_535 })
            .field("name", FieldType::Utf8 { max: Some(32) })
            .field(
                "opt",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 16 })),
            )
            .build()
    }

    fn sample_value() -> Value {
        Value::Struct(vec![
            Value::Bool(true),
            Value::U64(77),
            Value::U64(2),
            Value::U64(1234),
            Value::Str("cell-17".into()),
            Value::some(Value::U64(9)),
        ])
    }

    #[test]
    fn validate_accepts_conforming_value() {
        sample_schema().validate(&sample_value()).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let v = Value::Struct(vec![Value::Bool(true)]);
        assert!(sample_schema().validate(&v).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut v = sample_value();
        if let Value::Struct(fields) = &mut v {
            fields[3] = Value::U64(100_000); // over tac max
        }
        assert!(sample_schema().validate(&v).is_err());
    }

    #[test]
    fn validate_rejects_uint_overflow() {
        let schema = StructSchema::builder("S")
            .field("b", FieldType::UInt { bits: 8 })
            .build();
        assert!(schema
            .validate(&Value::Struct(vec![Value::U64(256)]))
            .is_err());
        schema
            .validate(&Value::Struct(vec![Value::U64(255)]))
            .unwrap();
    }

    #[test]
    fn validate_rejects_overlong_string() {
        let mut v = sample_value();
        if let Value::Struct(fields) = &mut v {
            fields[4] = Value::Str("x".repeat(100));
        }
        assert!(sample_schema().validate(&v).is_err());
    }

    #[test]
    fn validate_choice_bounds() {
        let schema = StructSchema::builder("C")
            .field(
                "c",
                FieldType::Choice(vec![
                    Variant {
                        name: "a".into(),
                        ty: FieldType::Bool,
                    },
                    Variant {
                        name: "b".into(),
                        ty: FieldType::UInt { bits: 8 },
                    },
                ]),
            )
            .build();
        schema
            .validate(&Value::Struct(vec![Value::choice(1, Value::U64(3))]))
            .unwrap();
        assert!(schema
            .validate(&Value::Struct(vec![Value::choice(5, Value::Bool(true))]))
            .is_err());
        assert!(schema
            .validate(&Value::Struct(vec![Value::choice(0, Value::U64(3))]))
            .is_err());
    }

    #[test]
    fn leaf_count_recurses() {
        let inner = Arc::new(
            StructSchema::builder("Inner")
                .field("a", FieldType::Bool)
                .field("b", FieldType::Bool)
                .build(),
        );
        let schema = StructSchema::builder("Outer")
            .field("x", FieldType::UInt { bits: 8 })
            .field("nested", FieldType::Struct(inner))
            .build();
        assert_eq!(schema.leaf_count(), 3);
    }

    #[test]
    fn contains_choice_detects_nesting() {
        assert!(!sample_schema().contains_choice());
        let inner = Arc::new(
            StructSchema::builder("Inner")
                .field(
                    "c",
                    FieldType::Choice(vec![Variant {
                        name: "v".into(),
                        ty: FieldType::Bool,
                    }]),
                )
                .build(),
        );
        let schema = StructSchema::builder("Outer")
            .field("nested", FieldType::Struct(inner))
            .build();
        assert!(schema.contains_choice());
    }

    #[test]
    fn as_u64_unwraps_optionals() {
        assert_eq!(Value::some(Value::U64(7)).as_u64(), Some(7));
        assert_eq!(Value::none().as_u64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
    }
}
