//! A Protocol-Buffers-like format (Fig. 18 comparator).
//!
//! Tag/wire-type varint framing: scalars as varints (zigzag for signed),
//! everything else length-delimited. Like protobuf, absent optional fields
//! are simply omitted and the decoder dispatches on field numbers, which
//! costs a branch per tag and allocation per nested message — the overheads
//! that leave protobuf behind FlatBuffers in the paper's Fig. 18.

use crate::value::{FieldType, Schema, StructSchema, Value};
use crate::WireFormat;
use neutrino_common::{Error, Result};

/// The protobuf-like codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProtoLike;

const NAME: &str = "protobuf";

/// Wire type 0: varint.
const WT_VARINT: u64 = 0;
/// Wire type 2: length-delimited.
const WT_LEN: u64 = 2;

impl ProtoLike {
    /// Creates the codec.
    pub fn new() -> Self {
        ProtoLike
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec(NAME, detail.into())
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_tag(out: &mut Vec<u8>, field_no: u64, wire_type: u64) {
    put_varint(out, (field_no << 3) | wire_type);
}

/// True when the field encodes as a bare varint.
fn is_varint(ty: &FieldType) -> bool {
    matches!(
        ty,
        FieldType::Bool
            | FieldType::UInt { .. }
            | FieldType::Int
            | FieldType::Constrained { .. }
            | FieldType::Enum { .. }
    )
}

fn encode_varint_value(ty: &FieldType, value: &Value, out: &mut Vec<u8>) -> Result<()> {
    match (ty, value) {
        (FieldType::Bool, Value::Bool(b)) => put_varint(out, u64::from(*b)),
        (FieldType::UInt { .. }, Value::U64(x)) => put_varint(out, *x),
        (FieldType::Int, Value::I64(x)) => put_varint(out, zigzag(*x)),
        (FieldType::Constrained { lo, .. }, v) => {
            let x = crate::value::integer_carrier(v)
                .ok_or_else(|| err("constrained field is not an integer"))?;
            if *lo >= 0 {
                put_varint(out, x as u64);
            } else {
                put_varint(out, zigzag(x));
            }
        }
        (FieldType::Enum { .. }, Value::U64(x)) => put_varint(out, *x),
        (ty, v) => return Err(err(format!("varint mismatch: {ty:?} vs {v:?}"))),
    }
    Ok(())
}

fn encode_len_delimited(
    ty: &FieldType,
    value: &Value,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<()> {
    scratch.clear();
    match (ty, value) {
        (FieldType::Bytes { .. }, Value::Bytes(bs)) => scratch.extend_from_slice(bs),
        (FieldType::Utf8 { .. }, Value::Str(s)) => scratch.extend_from_slice(s.as_bytes()),
        (FieldType::BitString { .. }, Value::Bits(bits)) => {
            put_varint(scratch, bits.len() as u64);
            let mut packed = vec![0u8; bits.len().div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    packed[i / 8] |= 0x80 >> (i % 8);
                }
            }
            scratch.extend_from_slice(&packed);
        }
        (FieldType::Struct(schema), v) => {
            let mut inner = Vec::new();
            encode_message(schema, v, &mut inner)?;
            scratch.extend_from_slice(&inner);
        }
        (FieldType::List { elem, .. }, Value::List(items)) => {
            put_varint(scratch, items.len() as u64);
            let mut inner_scratch = Vec::new();
            for item in items {
                if is_varint(elem) {
                    encode_varint_value(elem, item, scratch)?;
                } else {
                    let mut tmp = Vec::new();
                    encode_len_delimited(elem, item, &mut inner_scratch, &mut tmp)?;
                    scratch.extend_from_slice(&tmp);
                }
            }
        }
        (FieldType::Choice(variants), Value::Choice { index, value }) => {
            if *index as usize >= variants.len() {
                return Err(err(format!("choice index {index} out of range")));
            }
            put_varint(scratch, u64::from(*index));
            let var = &variants[*index as usize];
            if is_varint(&var.ty) {
                encode_varint_value(&var.ty, value, scratch)?;
            } else {
                let mut inner_scratch = Vec::new();
                let mut tmp = Vec::new();
                encode_len_delimited(&var.ty, value, &mut inner_scratch, &mut tmp)?;
                scratch.extend_from_slice(&tmp);
            }
        }
        (ty, v) => return Err(err(format!("length-delimited mismatch: {ty:?} vs {v:?}"))),
    }
    put_varint(out, scratch.len() as u64);
    out.extend_from_slice(scratch);
    Ok(())
}

fn encode_message(schema: &StructSchema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
    let fields = value
        .as_struct()
        .ok_or_else(|| err(format!("expected struct for {}", schema.name)))?;
    if fields.len() != schema.fields.len() {
        return Err(err(format!("struct {} arity mismatch", schema.name)));
    }
    let mut scratch = Vec::new();
    for (i, (def, val)) in schema.fields.iter().zip(fields).enumerate() {
        let field_no = (i + 1) as u64;
        let (ty, val) = match (&def.ty, val) {
            (FieldType::Optional(inner), Value::Optional(opt)) => match opt {
                None => continue, // omitted, like proto3 optional
                Some(v) => (inner.as_ref(), v.as_ref()),
            },
            (ty, v) => (ty, v),
        };
        if is_varint(ty) {
            put_tag(out, field_no, WT_VARINT);
            encode_varint_value(ty, val, out)?;
        } else {
            put_tag(out, field_no, WT_LEN);
            encode_len_delimited(ty, val, &mut scratch, out)?;
        }
    }
    Ok(())
}

struct ProtoReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ProtoReader<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| err("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(err("varint too long"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("truncated bytes"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn decode_varint_value(&mut self, ty: &FieldType) -> Result<Value> {
        let raw = self.get_varint()?;
        Ok(match ty {
            FieldType::Bool => Value::Bool(raw != 0),
            FieldType::UInt { .. } | FieldType::Enum { .. } => Value::U64(raw),
            FieldType::Int => Value::I64(unzigzag(raw)),
            FieldType::Constrained { lo, .. } => {
                if *lo >= 0 {
                    Value::U64(raw)
                } else {
                    Value::I64(unzigzag(raw))
                }
            }
            ty => return Err(err(format!("{ty:?} is not a varint type"))),
        })
    }

    fn decode_len_delimited(&mut self, ty: &FieldType) -> Result<Value> {
        let len = self.get_varint()? as usize;
        let body = self.take(len)?;
        let mut r = ProtoReader { buf: body, pos: 0 };
        match ty {
            FieldType::Bytes { .. } => Ok(Value::Bytes(body.to_vec())),
            FieldType::Utf8 { .. } => Ok(Value::Str(
                std::str::from_utf8(body)
                    .map_err(|_| err("invalid UTF-8"))?
                    .to_owned(),
            )),
            FieldType::BitString { .. } => {
                let nbits = r.get_varint()? as usize;
                let packed = r.take(nbits.div_ceil(8))?;
                Ok(Value::Bits(
                    (0..nbits)
                        .map(|i| packed[i / 8] & (0x80 >> (i % 8)) != 0)
                        .collect(),
                ))
            }
            FieldType::Struct(schema) => decode_message(schema, body),
            FieldType::List { elem, .. } => {
                let count = r.get_varint()? as usize;
                let mut items = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    if is_varint(elem) {
                        items.push(r.decode_varint_value(elem)?);
                    } else {
                        items.push(r.decode_len_delimited(elem)?);
                    }
                }
                Ok(Value::List(items))
            }
            FieldType::Choice(variants) => {
                let index = r.get_varint()? as u32;
                let var = variants
                    .get(index as usize)
                    .ok_or_else(|| err(format!("choice index {index} out of range")))?;
                let inner = if is_varint(&var.ty) {
                    r.decode_varint_value(&var.ty)?
                } else {
                    r.decode_len_delimited(&var.ty)?
                };
                Ok(Value::Choice {
                    index,
                    value: Box::new(inner),
                })
            }
            ty => Err(err(format!("{ty:?} is not length-delimited"))),
        }
    }
}

fn decode_message(schema: &StructSchema, bytes: &[u8]) -> Result<Value> {
    let mut r = ProtoReader { buf: bytes, pos: 0 };
    let mut fields: Vec<Option<Value>> = vec![None; schema.fields.len()];
    while !r.at_end() {
        let tag = r.get_varint()?;
        let field_no = (tag >> 3) as usize;
        let wire_type = tag & 0x7;
        if field_no == 0 || field_no > schema.fields.len() {
            return Err(err(format!("unknown field number {field_no}")));
        }
        let def = &schema.fields[field_no - 1];
        let ty = match &def.ty {
            FieldType::Optional(inner) => inner.as_ref(),
            ty => ty,
        };
        let value = match wire_type {
            WT_VARINT => r.decode_varint_value(ty)?,
            WT_LEN => r.decode_len_delimited(ty)?,
            other => return Err(err(format!("unsupported wire type {other}"))),
        };
        fields[field_no - 1] = Some(value);
    }
    let mut out = Vec::with_capacity(schema.fields.len());
    for (def, slot) in schema.fields.iter().zip(fields) {
        match (&def.ty, slot) {
            (FieldType::Optional(_), Some(v)) => out.push(Value::Optional(Some(Box::new(v)))),
            (FieldType::Optional(_), None) => out.push(Value::Optional(None)),
            (_, Some(v)) => out.push(v),
            (_, None) => {
                return Err(err(format!(
                    "required field {}.{} missing",
                    schema.name, def.name
                )))
            }
        }
    }
    Ok(Value::Struct(out))
}

impl WireFormat for ProtoLike {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        encode_message(schema, value, out)
    }

    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value> {
        decode_message(schema, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Variant;
    use std::sync::Arc;

    fn round_trip(schema: &Schema, value: &Value) -> Vec<u8> {
        let codec = ProtoLike::new();
        let mut buf = Vec::new();
        codec.encode(schema, value, &mut buf).unwrap();
        let back = codec.decode(schema, &buf).unwrap();
        assert_eq!(&back, value);
        buf
    }

    #[test]
    fn varint_encoding_is_compact_for_small_values() {
        let schema = StructSchema::builder("S")
            .field("x", FieldType::UInt { bits: 64 })
            .build();
        let buf = round_trip(&schema, &Value::Struct(vec![Value::U64(5)]));
        assert_eq!(buf.len(), 2); // tag + single varint byte
    }

    #[test]
    fn zigzag_round_trips_negatives() {
        assert_eq!(unzigzag(zigzag(-1)), -1);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
        let schema = StructSchema::builder("S")
            .field("x", FieldType::Int)
            .build();
        round_trip(&schema, &Value::Struct(vec![Value::I64(-123456)]));
    }

    #[test]
    fn omitted_optionals_round_trip() {
        let schema = StructSchema::builder("S")
            .field(
                "a",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 32 })),
            )
            .field("b", FieldType::UInt { bits: 32 })
            .build();
        let absent = Value::Struct(vec![Value::none(), Value::U64(7)]);
        let buf = round_trip(&schema, &absent);
        // Only field 2 encoded: tag + varint.
        assert_eq!(buf.len(), 2);
        round_trip(
            &schema,
            &Value::Struct(vec![Value::some(Value::U64(1)), Value::U64(7)]),
        );
    }

    #[test]
    fn nested_and_repeated_round_trip() {
        let inner = Arc::new(
            StructSchema::builder("Inner")
                .field("id", FieldType::UInt { bits: 32 })
                .field("label", FieldType::Utf8 { max: None })
                .build(),
        );
        let schema = StructSchema::builder("Outer")
            .field(
                "items",
                FieldType::List {
                    elem: Box::new(FieldType::Struct(inner)),
                    max: None,
                },
            )
            .field(
                "nums",
                FieldType::List {
                    elem: Box::new(FieldType::UInt { bits: 32 }),
                    max: None,
                },
            )
            .build();
        let v = Value::Struct(vec![
            Value::List(vec![
                Value::Struct(vec![Value::U64(1), Value::Str("a".into())]),
                Value::Struct(vec![Value::U64(2), Value::Str("b".into())]),
            ]),
            Value::List(vec![Value::U64(100), Value::U64(200), Value::U64(300)]),
        ]);
        round_trip(&schema, &v);
    }

    #[test]
    fn choices_round_trip() {
        let schema = StructSchema::builder("C")
            .field(
                "id",
                FieldType::Choice(vec![
                    Variant {
                        name: "tmsi".into(),
                        ty: FieldType::UInt { bits: 32 },
                    },
                    Variant {
                        name: "imsi".into(),
                        ty: FieldType::Utf8 { max: None },
                    },
                ]),
            )
            .build();
        round_trip(
            &schema,
            &Value::Struct(vec![Value::choice(0, Value::U64(77))]),
        );
        round_trip(
            &schema,
            &Value::Struct(vec![Value::choice(1, Value::Str("imsi-string".into()))]),
        );
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let schema = StructSchema::builder("S")
            .field("s", FieldType::Utf8 { max: None })
            .build();
        let codec = ProtoLike::new();
        let mut buf = Vec::new();
        codec
            .encode(
                &schema,
                &Value::Struct(vec![Value::Str("payload".into())]),
                &mut buf,
            )
            .unwrap();
        for cut in 1..buf.len() {
            assert!(codec.decode(&schema, &buf[..cut]).is_err());
        }
        assert!(codec.decode(&schema, &[0xFF; 16]).is_err());
    }
}
