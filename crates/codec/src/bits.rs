//! Bit-level buffers for the ASN.1 PER codec.
//!
//! PER packs fields at bit granularity ("unaligned within the aligned
//! variant" for small constrained values) and byte-aligns before octet
//! strings and large integers. These cursors implement exactly the
//! primitives the [`crate::per`] codec needs: MSB-first bit writes/reads,
//! explicit alignment, and whole-byte block copies.

use neutrino_common::{Error, Result};

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the last byte (0 means the last byte is full
    /// or the buffer is empty).
    partial_bits: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.bytes.push(0);
            self.partial_bits = 0;
        }
        if self.partial_bits == 0 {
            // Fresh byte was just pushed above.
            self.partial_bits = 1;
            if bit {
                *self.bytes.last_mut().expect("just pushed") |= 0x80;
            }
            return;
        }
        let last = self.bytes.last_mut().expect("non-empty");
        if bit {
            *last |= 0x80 >> self.partial_bits;
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Writes the low `width` bits of `value`, MSB first. `width` ≤ 64.
    pub fn write_bits(&mut self, value: u64, width: u8) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary (no-op if aligned).
    pub fn align(&mut self) {
        while self.partial_bits != 0 {
            self.write_bit(false);
        }
    }

    /// Writes whole bytes; the cursor must be byte-aligned.
    pub fn write_bytes(&mut self, data: &[u8]) {
        debug_assert_eq!(self.partial_bits, 0, "write_bytes requires alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Finishes and returns the padded byte buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align();
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Global bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    fn err(&self) -> Error {
        Error::codec(
            "asn1-per",
            format!("unexpected end of input at bit {}", self.pos),
        )
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(self.err());
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits (≤ 64), MSB first.
    pub fn read_bits(&mut self, width: u8) -> Result<u64> {
        debug_assert!(width <= 64);
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Reads `n` whole bytes; the cursor must be byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        debug_assert_eq!(self.pos % 8, 0, "read_bytes requires alignment");
        let start = self.pos / 8;
        let end = start.checked_add(n).ok_or_else(|| self.err())?;
        if end > self.bytes.len() {
            return Err(self.err());
        }
        self.pos = end * 8;
        Ok(&self.bytes[start..end])
    }
}

/// Number of bits needed to represent values in `0..=max` (at least 1).
pub fn bits_for_range(max: u64) -> u8 {
    if max == 0 {
        1
    } else {
        (64 - max.leading_zeros()) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn alignment_and_byte_copy() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align();
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1100_0000, 0xAB, 0xCD]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align();
        assert_eq!(r.read_bytes(2).unwrap(), &[0xAB, 0xCD]);
    }

    #[test]
    fn reader_detects_truncation() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn read_bytes_out_of_range() {
        let bytes = [1u8, 2];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bytes(3).is_err());
        assert_eq!(r.read_bytes(2).unwrap(), &[1, 2]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b1010, 4);
        assert_eq!(w.bit_len(), 4);
        w.write_bits(0xFF, 8);
        assert_eq!(w.bit_len(), 12);
    }

    #[test]
    fn bits_for_range_boundaries() {
        assert_eq!(bits_for_range(0), 1);
        assert_eq!(bits_for_range(1), 1);
        assert_eq!(bits_for_range(2), 2);
        assert_eq!(bits_for_range(255), 8);
        assert_eq!(bits_for_range(256), 9);
        assert_eq!(bits_for_range(u64::MAX), 64);
    }

    #[test]
    fn sixty_four_bit_value_round_trips() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX - 3, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX - 3);
    }
}
