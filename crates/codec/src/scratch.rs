//! Thread-local recycled byte buffers for the encode/framing hot path.
//!
//! Every control message that crosses a wire needs a temporary `Vec<u8>`:
//! the envelope payload inside a frame, the state snapshot inside a
//! `StateSync`, the frame itself on a transport that only needs to borrow
//! it. Allocating those per message is the kind of steady-state churn the
//! paper's DPDK pipeline avoids by design; this module gives the same
//! effect in safe Rust with a small per-thread pool of retained buffers.
//!
//! Usage is scoped so buffers cannot leak out with stale contents:
//!
//! ```
//! let frame_len = neutrino_codec::scratch::with_buf(|buf| {
//!     buf.extend_from_slice(b"frame bytes");
//!     buf.len()
//! });
//! assert_eq!(frame_len, 11);
//! ```
//!
//! The closure receives an empty (cleared, capacity-retaining) buffer and
//! may return anything *derived* from it, but not the buffer itself. Nested
//! calls get distinct buffers, so an encoder that needs a payload scratch
//! inside a frame scratch composes naturally. Pool residency is bounded:
//! at most [`MAX_POOLED`] buffers per thread, and buffers that grew beyond
//! [`MAX_RETAINED_CAP`] are dropped rather than hoarded.

use std::cell::RefCell;

/// Maximum buffers retained per thread.
const MAX_POOLED: usize = 8;

/// A buffer that grew beyond this many bytes is freed, not pooled, so one
/// pathological message cannot pin large capacity forever.
const MAX_RETAINED_CAP: usize = 1 << 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a cleared scratch buffer drawn from the thread-local pool,
/// returning the buffer to the pool afterwards (unless `f` panics, in which
/// case the buffer is simply dropped — the pool never holds a poisoned
/// state).
pub fn with_buf<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    let mut buf = POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    let out = f(&mut buf);
    if buf.capacity() <= MAX_RETAINED_CAP {
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_arrives_empty_and_capacity_is_reused() {
        let cap = with_buf(|b| {
            b.extend_from_slice(&[1, 2, 3, 4]);
            b.capacity()
        });
        assert!(cap >= 4);
        with_buf(|b| {
            assert!(b.is_empty(), "stale contents must be cleared");
            assert!(b.capacity() >= 4, "capacity must be recycled");
        });
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with_buf(|outer| {
            outer.push(0xAA);
            with_buf(|inner| {
                assert!(inner.is_empty());
                inner.push(0xBB);
            });
            assert_eq!(outer.as_slice(), &[0xAA], "inner call must not alias");
        });
    }

    #[test]
    fn oversized_buffers_are_not_hoarded() {
        with_buf(|b| b.reserve(MAX_RETAINED_CAP + 1));
        // The pool must still hand out working buffers afterwards.
        with_buf(|b| {
            b.push(1);
            assert_eq!(b.len(), 1);
        });
    }
}
