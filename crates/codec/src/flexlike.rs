//! A FlexBuffers-like self-describing format (Fig. 18 comparator).
//!
//! FlexBuffers is FlatBuffers' schemaless sibling: every value carries its
//! own type information, so no schema is needed to read a buffer, at the
//! cost of per-value type dispatch and larger output. This implementation
//! stores a type byte before each value with varint lengths — decoding is
//! driven entirely by the buffer (the schema is only consulted afterwards
//! for validation), which is why it trails the schema'd codecs in Fig. 18.

use crate::value::{Schema, Value};
use crate::WireFormat;
use neutrino_common::{Error, Result};

/// The FlexBuffers-like codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlexLike;

const NAME: &str = "flexbuf";

const T_BOOL_FALSE: u8 = 0x01;
const T_BOOL_TRUE: u8 = 0x02;
const T_U64: u8 = 0x03;
const T_I64: u8 = 0x04;
const T_BYTES: u8 = 0x05;
const T_STR: u8 = 0x06;
const T_BITS: u8 = 0x07;
const T_STRUCT: u8 = 0x08;
const T_LIST: u8 = 0x09;
const T_CHOICE: u8 = 0x0A;
const T_NONE: u8 = 0x0B;
const T_SOME: u8 = 0x0C;

impl FlexLike {
    /// Creates the codec.
    pub fn new() -> Self {
        FlexLike
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec(NAME, detail.into())
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Bool(false) => out.push(T_BOOL_FALSE),
        Value::Bool(true) => out.push(T_BOOL_TRUE),
        Value::U64(x) => {
            out.push(T_U64);
            put_varint(out, *x);
        }
        Value::I64(x) => {
            out.push(T_I64);
            put_varint(out, zigzag(*x));
        }
        Value::Bytes(bs) => {
            out.push(T_BYTES);
            put_varint(out, bs.len() as u64);
            out.extend_from_slice(bs);
        }
        Value::Str(s) => {
            out.push(T_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bits(bits) => {
            out.push(T_BITS);
            put_varint(out, bits.len() as u64);
            let mut packed = vec![0u8; bits.len().div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    packed[i / 8] |= 0x80 >> (i % 8);
                }
            }
            out.extend_from_slice(&packed);
        }
        Value::Struct(fields) => {
            out.push(T_STRUCT);
            put_varint(out, fields.len() as u64);
            for f in fields {
                encode_value(f, out);
            }
        }
        Value::List(items) => {
            out.push(T_LIST);
            put_varint(out, items.len() as u64);
            for it in items {
                encode_value(it, out);
            }
        }
        Value::Choice { index, value } => {
            out.push(T_CHOICE);
            put_varint(out, u64::from(*index));
            encode_value(value, out);
        }
        Value::Optional(None) => out.push(T_NONE),
        Value::Optional(Some(inner)) => {
            out.push(T_SOME);
            encode_value(inner, out);
        }
    }
}

struct FlexReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FlexReader<'a> {
    fn byte(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| err("truncated buffer"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 {
                return Err(err("varint too long"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err("truncated bytes"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn decode_value(&mut self) -> Result<Value> {
        match self.byte()? {
            T_BOOL_FALSE => Ok(Value::Bool(false)),
            T_BOOL_TRUE => Ok(Value::Bool(true)),
            T_U64 => Ok(Value::U64(self.varint()?)),
            T_I64 => Ok(Value::I64(unzigzag(self.varint()?))),
            T_BYTES => {
                let len = self.varint()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            T_STR => {
                let len = self.varint()? as usize;
                let bytes = self.take(len)?;
                Ok(Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|_| err("invalid UTF-8"))?
                        .to_owned(),
                ))
            }
            T_BITS => {
                let nbits = self.varint()? as usize;
                let packed = self.take(nbits.div_ceil(8))?;
                Ok(Value::Bits(
                    (0..nbits)
                        .map(|i| packed[i / 8] & (0x80 >> (i % 8)) != 0)
                        .collect(),
                ))
            }
            T_STRUCT => {
                let n = self.varint()? as usize;
                let mut fields = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    fields.push(self.decode_value()?);
                }
                Ok(Value::Struct(fields))
            }
            T_LIST => {
                let n = self.varint()? as usize;
                let mut items = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    items.push(self.decode_value()?);
                }
                Ok(Value::List(items))
            }
            T_CHOICE => {
                let index = self.varint()? as u32;
                Ok(Value::Choice {
                    index,
                    value: Box::new(self.decode_value()?),
                })
            }
            T_NONE => Ok(Value::Optional(None)),
            T_SOME => Ok(Value::Optional(Some(Box::new(self.decode_value()?)))),
            other => Err(err(format!("unknown type tag {other:#x}"))),
        }
    }
}

impl WireFormat for FlexLike {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        // Self-describing: validate against the schema, then ignore it.
        schema
            .validate(value)
            .map_err(|e| err(format!("schema validation failed: {e}")))?;
        out.clear();
        encode_value(value, out);
        Ok(())
    }

    fn decode(&self, _schema: &Schema, bytes: &[u8]) -> Result<Value> {
        let mut r = FlexReader { buf: bytes, pos: 0 };
        let v = r.decode_value()?;
        if r.pos != bytes.len() {
            return Err(err(format!("{} trailing bytes", bytes.len() - r.pos)));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{FieldType, StructSchema};

    fn schema() -> Schema {
        StructSchema::builder("S")
            .field("b", FieldType::Bool)
            .field("u", FieldType::UInt { bits: 64 })
            .field("i", FieldType::Int)
            .field("s", FieldType::Utf8 { max: None })
            .field(
                "opt",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 8 })),
            )
            .field(
                "list",
                FieldType::List {
                    elem: Box::new(FieldType::UInt { bits: 64 }),
                    max: None,
                },
            )
            .build()
    }

    #[test]
    fn round_trips_without_schema_knowledge() {
        let schema = schema();
        let v = Value::Struct(vec![
            Value::Bool(true),
            Value::U64(123456789),
            Value::I64(-777),
            Value::Str("schemaless".into()),
            Value::some(Value::U64(3)),
            Value::List(vec![Value::U64(1), Value::U64(2)]),
        ]);
        let codec = FlexLike::new();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        // Decoding needs no schema: pass an empty one.
        let empty = StructSchema::builder("ignored").build();
        assert_eq!(codec.decode(&empty, &buf).unwrap(), v);
    }

    #[test]
    fn encode_validates_against_schema() {
        let schema = StructSchema::builder("S")
            .field("x", FieldType::UInt { bits: 8 })
            .build();
        let codec = FlexLike::new();
        let mut buf = Vec::new();
        assert!(codec
            .encode(&schema, &Value::Struct(vec![Value::U64(300)]), &mut buf)
            .is_err());
    }

    #[test]
    fn type_bytes_make_it_larger_than_proto() {
        let schema = StructSchema::builder("S")
            .field("a", FieldType::UInt { bits: 32 })
            .field("b", FieldType::UInt { bits: 32 })
            .field("c", FieldType::UInt { bits: 32 })
            .build();
        let v = Value::Struct(vec![Value::U64(1), Value::U64(2), Value::U64(3)]);
        let codec = FlexLike::new();
        let mut flex = Vec::new();
        codec.encode(&schema, &v, &mut flex).unwrap();
        let mut proto = Vec::new();
        crate::protolike::ProtoLike::new()
            .encode(&schema, &v, &mut proto)
            .unwrap();
        assert!(flex.len() > proto.len());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let schema = StructSchema::builder("S")
            .field("b", FieldType::Bool)
            .build();
        let codec = FlexLike::new();
        let mut buf = Vec::new();
        codec
            .encode(&schema, &Value::Struct(vec![Value::Bool(true)]), &mut buf)
            .unwrap();
        buf.push(0x00);
        assert!(codec.decode(&schema, &buf).is_err());
    }

    #[test]
    fn truncation_is_an_error() {
        let schema = StructSchema::builder("S")
            .field("s", FieldType::Utf8 { max: None })
            .build();
        let codec = FlexLike::new();
        let mut buf = Vec::new();
        codec
            .encode(
                &schema,
                &Value::Struct(vec![Value::Str("0123456789".into())]),
                &mut buf,
            )
            .unwrap();
        for cut in 0..buf.len() {
            assert!(codec.decode(&schema, &buf[..cut]).is_err());
        }
    }
}
