//! Serialization engines for cellular control messages.
//!
//! The paper's §3.2/§4.4 argue that ASN.1 PER — the serialization mandated
//! for S1AP/NGAP — is a latency bottleneck, and replace it with an optimized
//! FlatBuffers scheme. This crate reproduces that entire comparison surface
//! from scratch:
//!
//! * [`per`] — an aligned ASN.1 Packed Encoding Rules subset. Bit-level
//!   packing, optional-field preambles, length determinants, and decode-time
//!   allocation: the exact cost drivers the paper attributes to ASN.1.
//! * [`fastbuf`] — a FlatBuffers-like format: tables with vtables, offset
//!   based zero-copy field access, no decode-time allocation. Includes the
//!   paper's **svtable** optimization (§4.4) that strips the wrapper table
//!   FlatBuffers requires around single-field union members (−10 bytes per
//!   scalar union, −14 bytes per variable-length union).
//! * [`cdr`] — a Fast-CDR-like plain aligned binary format (fast sequential
//!   codec, used as a Fig. 18 comparator).
//! * [`lcmlike`] — an LCM-like format (fingerprint header, big-endian fixed
//!   order; cannot express unions — mirroring the expressiveness gap the
//!   paper reports).
//! * [`protolike`] — a Protocol-Buffers-like tag/varint format.
//! * [`flexlike`] — a FlexBuffers-like self-describing format.
//!
//! All codecs speak the same [`value::Schema`]/[`value::Value`] reflection
//! model, so the experiment harness can run any message through any codec.
//!
//! # Benchmark semantics
//!
//! The paper measures "encoding + decoding" with each library's *native*
//! usage: for ASN.1/CDR/LCM/protobuf, decoding materializes an owned object
//! (copies + allocations); for FlatBuffers, "decoding" is direct field
//! access into the encoded buffer. [`WireFormat::traverse`] exposes exactly
//! that native read path (it folds every field into a checksum), and the
//! Fig. 18/19 harnesses measure `encode + traverse`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod bits;
pub mod calibrate;
pub mod cdr;
pub mod fastbuf;
pub mod flexlike;
pub mod lcmlike;
pub mod per;
pub mod protolike;
pub mod scratch;
pub mod value;

use neutrino_common::Result;
use value::{Schema, Value};

/// A serialization scheme for control messages.
///
/// Implementations must be pure: the same `(schema, value)` must always
/// produce the same bytes, and `decode(encode(v)) == v` for every value the
/// codec can express.
///
/// ```
/// use neutrino_codec::value::{FieldType, StructSchema, Value};
/// use neutrino_codec::{CodecKind, WireFormat};
///
/// let schema = StructSchema::builder("Demo")
///     .field("tac", FieldType::Constrained { lo: 0, hi: 65_535 })
///     .field("name", FieldType::Utf8 { max: Some(16) })
///     .build();
/// let value = Value::Struct(vec![Value::U64(1234), Value::Str("cell".into())]);
///
/// for kind in CodecKind::ALL {
///     let codec = kind.instance();
///     if !codec.supports(&schema) { continue; }
///     let mut wire = Vec::new();
///     codec.encode(&schema, &value, &mut wire).unwrap();
///     assert_eq!(codec.decode(&schema, &wire).unwrap(), value);
/// }
/// ```
pub trait WireFormat: Send + Sync {
    /// Short stable name (used in experiment output and error messages).
    fn name(&self) -> &'static str;

    /// Encodes `value` (which must conform to `schema`) into `out`.
    /// `out` is cleared first.
    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()>;

    /// Fully decodes `bytes` into an owned [`Value`] tree.
    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value>;

    /// Reads every field of the message once through the codec's *native*
    /// access path and folds it into a checksum.
    ///
    /// For sequential formats this necessarily performs a full decode
    /// (including allocation, as their real libraries do); for
    /// [`fastbuf`], this is direct offset access with no allocation.
    fn traverse(&self, schema: &Schema, bytes: &[u8]) -> Result<u64> {
        Ok(checksum_value(&self.decode(schema, bytes)?))
    }

    /// True when the codec can express every construct in `schema`.
    ///
    /// Mirrors the paper's expressiveness comparison (e.g. LCM cannot encode
    /// the unions cellular control messages use widely).
    fn supports(&self, schema: &Schema) -> bool {
        let _ = schema;
        true
    }
}

/// Enumerates the codecs for sweep-style experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// ASN.1 aligned PER subset — the cellular baseline.
    Asn1Per,
    /// FlatBuffers-like, standard layout.
    Fastbuf,
    /// FlatBuffers-like with the paper's svtable union optimization.
    FastbufOptimized,
    /// Fast-CDR-like plain aligned binary.
    Cdr,
    /// LCM-like fingerprinted big-endian format.
    Lcm,
    /// Protocol-Buffers-like varint/tag format.
    Proto,
    /// FlexBuffers-like self-describing format.
    Flex,
}

impl CodecKind {
    /// Every codec, in the order the figures list them.
    pub const ALL: [CodecKind; 7] = [
        CodecKind::Asn1Per,
        CodecKind::Fastbuf,
        CodecKind::FastbufOptimized,
        CodecKind::Cdr,
        CodecKind::Lcm,
        CodecKind::Proto,
        CodecKind::Flex,
    ];

    /// Instantiates the codec.
    pub fn instance(self) -> Box<dyn WireFormat> {
        match self {
            CodecKind::Asn1Per => Box::new(per::Asn1Per::new()),
            CodecKind::Fastbuf => Box::new(fastbuf::Fastbuf::standard()),
            CodecKind::FastbufOptimized => Box::new(fastbuf::Fastbuf::optimized()),
            CodecKind::Cdr => Box::new(cdr::CdrLike::new()),
            CodecKind::Lcm => Box::new(lcmlike::LcmLike::new()),
            CodecKind::Proto => Box::new(protolike::ProtoLike::new()),
            CodecKind::Flex => Box::new(flexlike::FlexLike::new()),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Asn1Per => "asn1-per",
            CodecKind::Fastbuf => "fastbuf",
            CodecKind::FastbufOptimized => "fastbuf-opt",
            CodecKind::Cdr => "fast-cdr",
            CodecKind::Lcm => "lcm",
            CodecKind::Proto => "protobuf",
            CodecKind::Flex => "flexbuf",
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Folds a fully-decoded value into the checksum used by
/// [`WireFormat::traverse`]. Public so codec implementations and tests agree
/// on the exact folding.
pub fn checksum_value(v: &Value) -> u64 {
    fn mix(h: u64, x: u64) -> u64 {
        (h ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27)
    }
    match v {
        Value::Bool(b) => mix(1, u64::from(*b)),
        Value::U64(x) => mix(2, *x),
        Value::I64(x) => mix(3, *x as u64),
        Value::Bytes(bs) => {
            let mut h = 4u64;
            for &b in bs {
                h = mix(h, u64::from(b));
            }
            h
        }
        Value::Str(s) => {
            let mut h = 5u64;
            for &b in s.as_bytes() {
                h = mix(h, u64::from(b));
            }
            h
        }
        Value::Bits(bits) => {
            let mut h = 6u64;
            for &b in bits {
                h = mix(h, u64::from(b));
            }
            h
        }
        Value::Struct(fields) => {
            let mut h = 7u64;
            for f in fields {
                h = mix(h, checksum_value(f));
            }
            h
        }
        Value::List(items) => {
            let mut h = 8u64;
            for it in items {
                h = mix(h, checksum_value(it));
            }
            h
        }
        Value::Choice { index, value } => mix(mix(9, u64::from(*index)), checksum_value(value)),
        Value::Optional(opt) => match opt {
            None => 10,
            Some(inner) => mix(11, checksum_value(inner)),
        },
    }
}
