//! A FlatBuffers-like zero-copy format ("fastbuf") and the paper's
//! **svtable** optimization (§4.4).
//!
//! # Layout
//!
//! Little-endian throughout. A message is:
//!
//! ```text
//! [u32 root]            absolute offset of the root table
//! ...child data...      strings, vectors, sub-tables (written first)
//! [vtable][table]       per table: vtable then the table itself
//! ```
//!
//! A *table* starts with an `i32` soffset back to its vtable, followed by
//! field slots. A *vtable* is `u16 vtable_size, u16 table_size,
//! u16 slot_offset × n` where a zero slot offset means "field absent" —
//! exactly FlatBuffers' scheme, and the metadata the paper measures against
//! ASN.1's length-value encoding in Fig. 20. Scalars live inline in the
//! table at their natural alignment; strings, byte blobs, vectors and
//! sub-tables live out-of-line behind `u32` offsets.
//!
//! # Unions and the svtable
//!
//! Like FlatBuffers, a union (our [`FieldType::Choice`]) occupies two slots:
//! a `u8` tag and a `u32` offset. Standard FlatBuffers requires union
//! members to be *tables*, so a union whose payload is one scalar must wrap
//! it in a single-field table — costing a 6-byte vtable, 2 bytes of
//! alignment padding, and a 4-byte soffset. The paper's svtable replaces the
//! wrapper with a 2-byte marker followed directly by the payload:
//!
//! * single **scalar** payload: 16 bytes → 6 bytes (**−10**, the paper's
//!   number);
//! * single **variable-length** payload: the wrapper *and* its extra `u32`
//!   indirection disappear (**−14**).
//!
//! [`Fastbuf::standard`] and [`Fastbuf::optimized`] select the two modes;
//! both read paths are supported by the decoder of the mode that wrote them.
//!
//! # Access path
//!
//! [`WireFormat::traverse`] for fastbuf does **no allocation**: it walks the
//! encoded buffer through vtable offsets (the "direct access to inner fields
//! via pointers" property of §4.4). Full [`WireFormat::decode`] into an
//! owned tree exists for round-trip testing and interop.

use crate::value::{FieldType, Schema, StructSchema, Value, Variant};
use crate::WireFormat;
use neutrino_common::{Error, Result};

const NAME_STD: &str = "fastbuf";
const NAME_OPT: &str = "fastbuf-opt";

/// Marker tag that introduces an svtable-encoded scalar union payload.
const SVTABLE_SCALAR: u16 = 0xFB01;
/// Marker tag that introduces an svtable-encoded variable-length payload.
const SVTABLE_VARLEN: u16 = 0xFB02;

/// The fastbuf codec. Construct via [`Fastbuf::standard`] or
/// [`Fastbuf::optimized`].
#[derive(Debug, Clone, Copy)]
pub struct Fastbuf {
    svtable: bool,
}

impl Fastbuf {
    /// Standard FlatBuffers-like layout (unions wrap single fields in
    /// tables).
    pub fn standard() -> Self {
        Fastbuf { svtable: false }
    }

    /// With the paper's svtable optimization for single-field unions.
    pub fn optimized() -> Self {
        Fastbuf { svtable: true }
    }

    /// Whether the svtable optimization is enabled.
    pub fn is_optimized(&self) -> bool {
        self.svtable
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec("fastbuf", detail.into())
}

/// True when a union variant payload is a "single field" eligible for the
/// svtable optimization (a scalar or one variable-length value — not a
/// composite that genuinely needs a table).
fn is_single_field(ty: &FieldType) -> bool {
    !matches!(
        ty,
        FieldType::Struct(_)
            | FieldType::List { .. }
            | FieldType::Choice(_)
            | FieldType::Optional(_)
    )
}

/// Scalar slot size in bytes, or `None` if the type is stored out-of-line.
fn scalar_size(ty: &FieldType) -> Option<usize> {
    match ty {
        FieldType::Bool => Some(1),
        FieldType::UInt { bits } => Some(usize::from(*bits) / 8),
        FieldType::Int => Some(8),
        FieldType::Constrained { lo, hi } => {
            let range = (*hi as i128 - *lo as i128) as u128;
            Some(match range {
                0..=0xFF => 1,
                0x100..=0xFFFF => 2,
                0x1_0000..=0xFFFF_FFFF => 4,
                _ => 8,
            })
        }
        FieldType::Enum { .. } => Some(4),
        _ => None,
    }
}

/// Number of vtable slots a schema field occupies (unions take two).
fn slot_count(ty: &FieldType) -> usize {
    match ty {
        FieldType::Choice(_) => 2,
        FieldType::Optional(inner) => slot_count(inner),
        _ => 1,
    }
}

/// The raw little-endian carrier of a scalar (range-offset for constrained
/// integers).
fn scalar_raw(ty: &FieldType, value: &Value) -> Result<u64> {
    match (ty, value) {
        (FieldType::Bool, Value::Bool(b)) => Ok(u64::from(*b)),
        (FieldType::UInt { .. }, Value::U64(x)) => Ok(*x),
        (FieldType::Int, Value::I64(x)) => Ok(*x as u64),
        (FieldType::Enum { .. }, Value::U64(x)) => Ok(*x),
        (FieldType::Constrained { lo, .. }, v) => {
            let x = crate::value::integer_carrier(v)
                .ok_or_else(|| err("constrained field is not an integer"))?;
            Ok((x as i128 - *lo as i128) as u64)
        }
        (ty, v) => Err(err(format!("scalar mismatch: {ty:?} vs {v:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Builder {
    buf: Vec<u8>,
    svtable: bool,
    /// Reusable slot scratch shared by nested tables (frame discipline:
    /// each `write_table` call appends its slots, then truncates back).
    slots: Vec<PendingKind>,
    /// Reusable offset scratch for composite vectors.
    vec_offsets: Vec<u32>,
}

thread_local! {
    /// Encoder scratch recycled across messages: the slot stack and vector
    /// offset stack reach steady-state capacity after the first few encodes
    /// and never allocate again on the hot path.
    static SCRATCH: std::cell::Cell<(Vec<PendingKind>, Vec<u32>)> =
        const { std::cell::Cell::new((Vec::new(), Vec::new())) };
}

/// What one vtable slot of a table under construction will hold.
#[derive(Clone, Copy)]
enum PendingKind {
    Absent,
    Scalar { raw: u64, size: u8 },
    Offset(u32),
    UnionTag(u8),
}

impl Builder {
    fn pos(&self) -> usize {
        self.buf.len()
    }

    fn align(&mut self, to: usize) {
        while !self.buf.len().is_multiple_of(to) {
            self.buf.push(0);
        }
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn put_raw(&mut self, raw: u64, size: usize) {
        let le = raw.to_le_bytes();
        self.buf.extend_from_slice(&le[..size]);
    }

    fn put_scalar(&mut self, ty: &FieldType, value: &Value, size: usize) -> Result<()> {
        let raw = scalar_raw(ty, value)?;
        self.put_raw(raw, size);
        Ok(())
    }

    /// Writes a `[u32 len][bytes]` blob and returns its absolute offset.
    fn write_blob(&mut self, data: &[u8]) -> usize {
        self.align(4);
        let at = self.pos();
        self.put_u32(data.len() as u32);
        self.buf.extend_from_slice(data);
        at
    }

    /// Writes a variable-length value out-of-line, returning its offset.
    fn write_varlen(&mut self, ty: &FieldType, value: &Value) -> Result<usize> {
        match (ty, value) {
            (FieldType::Bytes { .. }, Value::Bytes(bs)) => Ok(self.write_blob(bs)),
            (FieldType::Utf8 { .. }, Value::Str(s)) => Ok(self.write_blob(s.as_bytes())),
            (FieldType::BitString { .. }, Value::Bits(bits)) => {
                let mut packed = vec![0u8; bits.len().div_ceil(8)];
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        packed[i / 8] |= 0x80 >> (i % 8);
                    }
                }
                self.align(4);
                let at = self.pos();
                self.put_u32(bits.len() as u32);
                self.buf.extend_from_slice(&packed);
                Ok(at)
            }
            (ty, v) => Err(err(format!("varlen mismatch: {ty:?} vs {v:?}"))),
        }
    }

    /// Writes a vector out-of-line and returns its offset. Scalar elements
    /// are packed inline; composite elements are written first and the
    /// vector stores `u32` offsets.
    fn write_list(&mut self, elem: &FieldType, items: &[Value]) -> Result<usize> {
        if let Some(size) = scalar_size(elem) {
            self.align(4);
            let at = self.pos();
            self.put_u32(items.len() as u32);
            for item in items {
                self.put_scalar(elem, item, size)?;
            }
            Ok(at)
        } else {
            let frame = self.vec_offsets.len();
            for item in items {
                let off = self.write_outline(elem, item)? as u32;
                self.vec_offsets.push(off);
            }
            self.align(4);
            let at = self.pos();
            self.put_u32(items.len() as u32);
            for i in frame..self.vec_offsets.len() {
                let off = self.vec_offsets[i];
                self.put_u32(off);
            }
            self.vec_offsets.truncate(frame);
            Ok(at)
        }
    }

    /// Writes any out-of-line value (blob, vector, or table) and returns its
    /// absolute offset.
    fn write_outline(&mut self, ty: &FieldType, value: &Value) -> Result<usize> {
        match ty {
            FieldType::Bytes { .. } | FieldType::Utf8 { .. } | FieldType::BitString { .. } => {
                self.write_varlen(ty, value)
            }
            FieldType::Struct(schema) => self.write_table(schema, value),
            FieldType::List { elem, .. } => match value {
                Value::List(items) => self.write_list(elem, items),
                v => Err(err(format!("expected list, got {v:?}"))),
            },
            ty => Err(err(format!("type {ty:?} is not out-of-line"))),
        }
    }

    /// Writes a union payload and returns the offset the value slot stores.
    fn write_union_payload(&mut self, variant: &Variant, value: &Value) -> Result<usize> {
        if is_single_field(&variant.ty) {
            if self.svtable {
                // svtable: 2-byte marker, payload follows directly.
                if let Some(size) = scalar_size(&variant.ty) {
                    self.align(2);
                    let at = self.pos();
                    self.put_u16(SVTABLE_SCALAR);
                    self.put_scalar(&variant.ty, value, size)?;
                    Ok(at)
                } else {
                    self.align(2);
                    let at = self.pos();
                    self.put_u16(SVTABLE_VARLEN);
                    // Payload written inline (no u32 indirection): len+bytes.
                    match (&variant.ty, value) {
                        (FieldType::Bytes { .. }, Value::Bytes(bs)) => {
                            self.put_u32(bs.len() as u32);
                            self.buf.extend_from_slice(bs);
                        }
                        (FieldType::Utf8 { .. }, Value::Str(s)) => {
                            self.put_u32(s.len() as u32);
                            self.buf.extend_from_slice(s.as_bytes());
                        }
                        (FieldType::BitString { .. }, Value::Bits(bits)) => {
                            let mut packed = vec![0u8; bits.len().div_ceil(8)];
                            for (i, &b) in bits.iter().enumerate() {
                                if b {
                                    packed[i / 8] |= 0x80 >> (i % 8);
                                }
                            }
                            self.put_u32(bits.len() as u32);
                            self.buf.extend_from_slice(&packed);
                        }
                        (ty, v) => {
                            return Err(err(format!("svtable varlen mismatch: {ty:?} vs {v:?}")))
                        }
                    }
                    Ok(at)
                }
            } else {
                // Standard FlatBuffers: wrap the single field in a one-field
                // table (soffset + slot) with its own vtable — the overhead
                // the paper's optimization removes. Written directly, without
                // materializing a wrapper schema.
                let (payload, payload_size) = match scalar_size(&variant.ty) {
                    Some(size) => (scalar_raw(&variant.ty, value)?, size),
                    None => {
                        let off = self.write_varlen(&variant.ty, value)?;
                        (off as u64, 4)
                    }
                };
                // vtable: one slot at offset 4 (right after the soffset).
                self.align(4);
                let vtable_pos = self.pos();
                self.put_u16(6);
                self.put_u16(4 + payload_size as u16);
                self.put_u16(4);
                self.align(payload_size.max(4));
                let table_pos = self.pos();
                let soffset = (table_pos - vtable_pos) as i32;
                self.buf.extend_from_slice(&soffset.to_le_bytes());
                self.put_raw(payload, payload_size);
                Ok(table_pos)
            }
        } else {
            // Composite payload: a genuine table either way.
            match &variant.ty {
                FieldType::Struct(schema) => self.write_table(schema, value),
                ty => Err(err(format!(
                    "union variant {ty:?} must be struct or single field"
                ))),
            }
        }
    }

    /// Writes a table (vtable first, then the table body) and returns the
    /// absolute offset of the table body.
    fn write_table(&mut self, schema: &StructSchema, value: &Value) -> Result<usize> {
        let fields = value
            .as_struct()
            .ok_or_else(|| err(format!("expected struct for {}", schema.name)))?;
        if fields.len() != schema.fields.len() {
            return Err(err(format!("struct {} arity mismatch", schema.name)));
        }

        // Pass 1: write out-of-line children; scalars cannot be written yet
        // (they live in the table body), so record what each slot will hold.
        // Slots live on the builder's shared scratch stack (frame
        // discipline) so nested tables cost no allocation.
        let frame = self.slots.len();

        for (def, val) in schema.fields.iter().zip(fields) {
            let (ty, val): (&FieldType, Option<&Value>) = match (&def.ty, val) {
                (FieldType::Optional(inner), Value::Optional(opt)) => {
                    (inner.as_ref(), opt.as_deref())
                }
                (ty, v) => (ty, Some(v)),
            };
            match val {
                None => {
                    for _ in 0..slot_count(ty) {
                        self.slots.push(PendingKind::Absent);
                    }
                }
                Some(v) => match ty {
                    FieldType::Choice(variants) => {
                        let (index, inner) = match v {
                            Value::Choice { index, value } => (*index, value.as_ref()),
                            v => return Err(err(format!("expected choice, got {v:?}"))),
                        };
                        let variant = variants
                            .get(index as usize)
                            .ok_or_else(|| err(format!("choice index {index} out of range")))?;
                        let off = self.write_union_payload(variant, inner)?;
                        self.slots.push(PendingKind::UnionTag(index as u8 + 1));
                        self.slots.push(PendingKind::Offset(off as u32));
                    }
                    ty if scalar_size(ty).is_some() => {
                        let kind = PendingKind::Scalar {
                            raw: scalar_raw(ty, v)?,
                            size: scalar_size(ty).expect("checked") as u8,
                        };
                        self.slots.push(kind);
                    }
                    ty => {
                        let off = self.write_outline(ty, v)?;
                        self.slots.push(PendingKind::Offset(off as u32));
                    }
                },
            }
        }
        // Pass 2: lay out the table body — soffset (4 bytes) then slots at
        // natural alignment. Slot offsets are derivable from the slot kinds,
        // so no second scratch vector is needed.
        let nslots = self.slots.len() - frame;
        let mut table_off = 4usize;
        let mut max_align = 4usize;
        for i in frame..self.slots.len() {
            match self.slots[i] {
                PendingKind::Absent => {}
                PendingKind::Scalar { size, .. } => {
                    let size = size as usize;
                    table_off = table_off.div_ceil(size) * size;
                    table_off += size;
                    max_align = max_align.max(size);
                }
                PendingKind::Offset(_) => {
                    table_off = table_off.div_ceil(4) * 4;
                    table_off += 4;
                }
                PendingKind::UnionTag(_) => {
                    table_off += 1;
                }
            }
        }
        let table_size = table_off;
        if table_size > u16::MAX as usize {
            self.slots.truncate(frame);
            return Err(err(format!("table {} exceeds 64KiB", schema.name)));
        }

        // Write the vtable (4-aligned so the following table lands on its
        // own alignment without depending on buffer position parity).
        self.align(4);
        let vtable_pos = self.pos();
        self.put_u16((4 + 2 * nslots) as u16);
        self.put_u16(table_size as u16);
        let mut off = 4usize;
        for i in frame..self.slots.len() {
            match self.slots[i] {
                PendingKind::Absent => self.put_u16(0),
                PendingKind::Scalar { size, .. } => {
                    let size = size as usize;
                    off = off.div_ceil(size) * size;
                    self.put_u16(off as u16);
                    off += size;
                }
                PendingKind::Offset(_) => {
                    off = off.div_ceil(4) * 4;
                    self.put_u16(off as u16);
                    off += 4;
                }
                PendingKind::UnionTag(_) => {
                    self.put_u16(off as u16);
                    off += 1;
                }
            }
        }

        // Write the table body, aligned to its widest scalar (≥4 for the
        // soffset) — the padding FlatBuffers pays and PER does not.
        self.align(max_align);
        let table_pos = self.pos();
        let soffset = (table_pos - vtable_pos) as i32;
        self.buf.extend_from_slice(&soffset.to_le_bytes());
        let mut cursor = 4usize;
        for i in frame..self.slots.len() {
            match self.slots[i] {
                PendingKind::Absent => {}
                PendingKind::Scalar { raw, size } => {
                    let size = size as usize;
                    let target = cursor.div_ceil(size) * size;
                    while cursor < target {
                        self.buf.push(0);
                        cursor += 1;
                    }
                    self.put_raw(raw, size);
                    cursor += size;
                }
                PendingKind::Offset(off) => {
                    let target = cursor.div_ceil(4) * 4;
                    while cursor < target {
                        self.buf.push(0);
                        cursor += 1;
                    }
                    self.put_u32(off);
                    cursor += 4;
                }
                PendingKind::UnionTag(tag) => {
                    self.buf.push(tag);
                    cursor += 1;
                }
            }
        }
        while cursor < table_size {
            self.buf.push(0);
            cursor += 1;
        }
        self.slots.truncate(frame);
        Ok(table_pos)
    }
}

// ---------------------------------------------------------------------------
// Decoding / zero-copy access
// ---------------------------------------------------------------------------

/// A zero-copy view of an encoded fastbuf table. This is the hot-path access
/// API: field reads are bounds-checked offset jumps, no allocation.
#[derive(Debug, Clone, Copy)]
pub struct FbTable<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FbTable<'a> {
    /// Interprets `buf` as a complete fastbuf message and returns the root
    /// table view.
    pub fn root(buf: &'a [u8]) -> Result<FbTable<'a>> {
        let root = read_u32(buf, 0)? as usize;
        if root < 4 || root >= buf.len() {
            return Err(err(format!("root offset {root} out of bounds")));
        }
        Ok(FbTable { buf, pos: root })
    }

    fn vtable(&self) -> Result<usize> {
        let soffset = read_i32(self.buf, self.pos)?;
        let vt = self.pos as i64 - i64::from(soffset);
        if vt < 0 || vt as usize >= self.buf.len() {
            return Err(err("vtable offset out of bounds"));
        }
        Ok(vt as usize)
    }

    /// Absolute buffer position of vtable slot `slot`'s content, or `None`
    /// when the field is absent.
    pub fn slot(&self, slot: usize) -> Result<Option<usize>> {
        let vt = self.vtable()?;
        let vt_size = read_u16(self.buf, vt)? as usize;
        let entry_pos = 4 + 2 * slot;
        if entry_pos + 2 > vt_size {
            return Ok(None);
        }
        let off = read_u16(self.buf, vt + entry_pos)? as usize;
        if off == 0 {
            return Ok(None);
        }
        Ok(Some(self.pos + off))
    }

    /// Reads a scalar slot as its raw (range-offset for constrained) value.
    pub fn scalar(&self, slot: usize, size: usize) -> Result<Option<u64>> {
        match self.slot(slot)? {
            None => Ok(None),
            Some(at) => {
                let bytes = get(self.buf, at, size)?;
                let mut le = [0u8; 8];
                le[..size].copy_from_slice(bytes);
                Ok(Some(u64::from_le_bytes(le)))
            }
        }
    }

    /// Follows an offset slot to an absolute position.
    pub fn offset(&self, slot: usize) -> Result<Option<usize>> {
        match self.slot(slot)? {
            None => Ok(None),
            Some(at) => Ok(Some(read_u32(self.buf, at)? as usize)),
        }
    }
}

fn get(buf: &[u8], at: usize, n: usize) -> Result<&[u8]> {
    buf.get(at..at + n)
        .ok_or_else(|| err(format!("read of {n} bytes at {at} out of bounds")))
}

fn read_u16(buf: &[u8], at: usize) -> Result<u16> {
    let b = get(buf, at, 2)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn read_u32(buf: &[u8], at: usize) -> Result<u32> {
    let b = get(buf, at, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn read_i32(buf: &[u8], at: usize) -> Result<i32> {
    Ok(read_u32(buf, at)? as i32)
}

struct Reader<'a> {
    buf: &'a [u8],
    svtable: bool,
}

impl<'a> Reader<'a> {
    fn scalar_to_value(&self, ty: &FieldType, raw: u64, size: usize) -> Result<Value> {
        Ok(match ty {
            FieldType::Bool => Value::Bool(raw != 0),
            FieldType::UInt { .. } => Value::U64(raw),
            FieldType::Int => Value::I64(sign_extend(raw, size)),
            FieldType::Enum { .. } => Value::U64(raw),
            FieldType::Constrained { lo, .. } => {
                let v = *lo as i128 + raw as i128;
                if *lo >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v as i64)
                }
            }
            ty => return Err(err(format!("{ty:?} is not a scalar"))),
        })
    }

    fn read_varlen(&self, ty: &FieldType, at: usize) -> Result<Value> {
        let len = read_u32(self.buf, at)? as usize;
        match ty {
            FieldType::Bytes { .. } => Ok(Value::Bytes(get(self.buf, at + 4, len)?.to_vec())),
            FieldType::Utf8 { .. } => {
                let bytes = get(self.buf, at + 4, len)?;
                Ok(Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|_| err("invalid UTF-8"))?
                        .to_owned(),
                ))
            }
            FieldType::BitString { .. } => {
                let packed = get(self.buf, at + 4, len.div_ceil(8))?;
                let bits = (0..len)
                    .map(|i| packed[i / 8] & (0x80 >> (i % 8)) != 0)
                    .collect();
                Ok(Value::Bits(bits))
            }
            ty => Err(err(format!("{ty:?} is not variable-length"))),
        }
    }

    fn read_outline(&self, ty: &FieldType, at: usize) -> Result<Value> {
        match ty {
            FieldType::Bytes { .. } | FieldType::Utf8 { .. } | FieldType::BitString { .. } => {
                self.read_varlen(ty, at)
            }
            FieldType::Struct(schema) => self.read_table(
                schema,
                FbTable {
                    buf: self.buf,
                    pos: at,
                },
            ),
            FieldType::List { elem, .. } => {
                let count = read_u32(self.buf, at)? as usize;
                // A corrupted count must not drive allocation: the elements
                // cannot occupy more bytes than the buffer holds.
                let elem_bytes = scalar_size(elem).unwrap_or(4);
                if count.saturating_mul(elem_bytes) > self.buf.len() {
                    return Err(err(format!("vector count {count} exceeds buffer")));
                }
                let mut items = Vec::with_capacity(count);
                if let Some(size) = scalar_size(elem) {
                    for i in 0..count {
                        let bytes = get(self.buf, at + 4 + i * size, size)?;
                        let mut le = [0u8; 8];
                        le[..size].copy_from_slice(bytes);
                        items.push(self.scalar_to_value(elem, u64::from_le_bytes(le), size)?);
                    }
                } else {
                    for i in 0..count {
                        let off = read_u32(self.buf, at + 4 + i * 4)? as usize;
                        items.push(self.read_outline(elem, off)?);
                    }
                }
                Ok(Value::List(items))
            }
            ty => Err(err(format!("{ty:?} is not out-of-line"))),
        }
    }

    fn read_union_payload(&self, variant: &Variant, at: usize) -> Result<Value> {
        if is_single_field(&variant.ty) {
            if self.svtable {
                let marker = read_u16(self.buf, at)?;
                match marker {
                    SVTABLE_SCALAR => {
                        let size = scalar_size(&variant.ty)
                            .ok_or_else(|| err("svtable scalar marker on varlen payload"))?;
                        let bytes = get(self.buf, at + 2, size)?;
                        let mut le = [0u8; 8];
                        le[..size].copy_from_slice(bytes);
                        self.scalar_to_value(&variant.ty, u64::from_le_bytes(le), size)
                    }
                    SVTABLE_VARLEN => self.read_varlen(&variant.ty, at + 2),
                    other => Err(err(format!("bad svtable marker {other:#x}"))),
                }
            } else {
                // Wrapper table with one field at slot 0.
                let table = FbTable {
                    buf: self.buf,
                    pos: at,
                };
                if let Some(size) = scalar_size(&variant.ty) {
                    let raw = table
                        .scalar(0, size)?
                        .ok_or_else(|| err("union wrapper missing payload"))?;
                    self.scalar_to_value(&variant.ty, raw, size)
                } else {
                    let off = table
                        .offset(0)?
                        .ok_or_else(|| err("union wrapper missing payload"))?;
                    self.read_varlen(&variant.ty, off)
                }
            }
        } else {
            match &variant.ty {
                FieldType::Struct(schema) => self.read_table(
                    schema,
                    FbTable {
                        buf: self.buf,
                        pos: at,
                    },
                ),
                ty => Err(err(format!("union variant {ty:?} unsupported"))),
            }
        }
    }

    fn read_table(&self, schema: &StructSchema, table: FbTable<'a>) -> Result<Value> {
        let mut fields = Vec::with_capacity(schema.fields.len());
        let mut slot = 0usize;
        for def in &schema.fields {
            let (ty, optional) = match &def.ty {
                FieldType::Optional(inner) => (inner.as_ref(), true),
                ty => (ty, false),
            };
            let value = match ty {
                FieldType::Choice(variants) => {
                    let tag = table.scalar(slot, 1)?;
                    let payload = table.offset(slot + 1)?;
                    slot += 2;
                    match (tag, payload) {
                        (Some(tag), Some(at)) if tag > 0 => {
                            let index = (tag - 1) as u32;
                            let variant = variants
                                .get(index as usize)
                                .ok_or_else(|| err(format!("union tag {index} out of range")))?;
                            Some(Value::Choice {
                                index,
                                value: Box::new(self.read_union_payload(variant, at)?),
                            })
                        }
                        (None, None) => None,
                        _ => return Err(err("union tag/payload slots inconsistent")),
                    }
                }
                ty if scalar_size(ty).is_some() => {
                    let size = scalar_size(ty).expect("checked");
                    let s = slot;
                    slot += 1;
                    match table.scalar(s, size)? {
                        Some(raw) => Some(self.scalar_to_value(ty, raw, size)?),
                        None => None,
                    }
                }
                ty => {
                    let s = slot;
                    slot += 1;
                    match table.offset(s)? {
                        Some(at) => Some(self.read_outline(ty, at)?),
                        None => None,
                    }
                }
            };
            match (optional, value) {
                (true, Some(v)) => fields.push(Value::Optional(Some(Box::new(v)))),
                (true, None) => fields.push(Value::Optional(None)),
                (false, Some(v)) => fields.push(v),
                (false, None) => {
                    return Err(err(format!(
                        "required field {}.{} absent",
                        schema.name, def.name
                    )))
                }
            }
        }
        Ok(Value::Struct(fields))
    }

    // -- zero-copy traversal (no allocation) --------------------------------

    fn mix(h: u64, x: u64) -> u64 {
        (h ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27)
    }

    fn checksum_scalar(&self, ty: &FieldType, raw: u64, size: usize) -> Result<u64> {
        Ok(match ty {
            FieldType::Bool => Self::mix(1, u64::from(raw != 0)),
            FieldType::UInt { .. } | FieldType::Enum { .. } => Self::mix(2, raw),
            FieldType::Int => Self::mix(3, sign_extend(raw, size) as u64),
            FieldType::Constrained { lo, .. } => {
                let v = *lo as i128 + raw as i128;
                if *lo >= 0 {
                    Self::mix(2, v as u64)
                } else {
                    Self::mix(3, v as i64 as u64)
                }
            }
            ty => return Err(err(format!("{ty:?} is not a scalar"))),
        })
    }

    fn checksum_varlen(&self, ty: &FieldType, at: usize) -> Result<u64> {
        let len = read_u32(self.buf, at)? as usize;
        match ty {
            FieldType::Bytes { .. } => {
                let bytes = get(self.buf, at + 4, len)?;
                let mut h = 4u64;
                for &b in bytes {
                    h = Self::mix(h, u64::from(b));
                }
                Ok(h)
            }
            FieldType::Utf8 { .. } => {
                let bytes = get(self.buf, at + 4, len)?;
                let mut h = 5u64;
                for &b in bytes {
                    h = Self::mix(h, u64::from(b));
                }
                Ok(h)
            }
            FieldType::BitString { .. } => {
                let packed = get(self.buf, at + 4, len.div_ceil(8))?;
                let mut h = 6u64;
                for i in 0..len {
                    h = Self::mix(h, u64::from(packed[i / 8] & (0x80 >> (i % 8)) != 0));
                }
                Ok(h)
            }
            ty => Err(err(format!("{ty:?} is not variable-length"))),
        }
    }

    fn checksum_outline(&self, ty: &FieldType, at: usize) -> Result<u64> {
        match ty {
            FieldType::Bytes { .. } | FieldType::Utf8 { .. } | FieldType::BitString { .. } => {
                self.checksum_varlen(ty, at)
            }
            FieldType::Struct(schema) => self.checksum_table(
                schema,
                FbTable {
                    buf: self.buf,
                    pos: at,
                },
            ),
            FieldType::List { elem, .. } => {
                let count = read_u32(self.buf, at)? as usize;
                let mut h = 8u64;
                if let Some(size) = scalar_size(elem) {
                    for i in 0..count {
                        let bytes = get(self.buf, at + 4 + i * size, size)?;
                        let mut le = [0u8; 8];
                        le[..size].copy_from_slice(bytes);
                        h = Self::mix(h, self.checksum_scalar(elem, u64::from_le_bytes(le), size)?);
                    }
                } else {
                    for i in 0..count {
                        let off = read_u32(self.buf, at + 4 + i * 4)? as usize;
                        h = Self::mix(h, self.checksum_outline(elem, off)?);
                    }
                }
                Ok(h)
            }
            ty => Err(err(format!("{ty:?} is not out-of-line"))),
        }
    }

    fn checksum_union_payload(&self, variant: &Variant, at: usize) -> Result<u64> {
        if is_single_field(&variant.ty) {
            if self.svtable {
                let marker = read_u16(self.buf, at)?;
                match marker {
                    SVTABLE_SCALAR => {
                        let size = scalar_size(&variant.ty)
                            .ok_or_else(|| err("svtable scalar marker on varlen payload"))?;
                        let bytes = get(self.buf, at + 2, size)?;
                        let mut le = [0u8; 8];
                        le[..size].copy_from_slice(bytes);
                        self.checksum_scalar(&variant.ty, u64::from_le_bytes(le), size)
                    }
                    SVTABLE_VARLEN => self.checksum_varlen(&variant.ty, at + 2),
                    other => Err(err(format!("bad svtable marker {other:#x}"))),
                }
            } else {
                let table = FbTable {
                    buf: self.buf,
                    pos: at,
                };
                if let Some(size) = scalar_size(&variant.ty) {
                    let raw = table
                        .scalar(0, size)?
                        .ok_or_else(|| err("union wrapper missing payload"))?;
                    self.checksum_scalar(&variant.ty, raw, size)
                } else {
                    let off = table
                        .offset(0)?
                        .ok_or_else(|| err("union wrapper missing payload"))?;
                    self.checksum_varlen(&variant.ty, off)
                }
            }
        } else {
            match &variant.ty {
                FieldType::Struct(schema) => self.checksum_table(
                    schema,
                    FbTable {
                        buf: self.buf,
                        pos: at,
                    },
                ),
                ty => Err(err(format!("union variant {ty:?} unsupported"))),
            }
        }
    }

    fn checksum_table(&self, schema: &StructSchema, table: FbTable<'a>) -> Result<u64> {
        let mut h = 7u64;
        let mut slot = 0usize;
        for def in &schema.fields {
            let (ty, optional) = match &def.ty {
                FieldType::Optional(inner) => (inner.as_ref(), true),
                ty => (ty, false),
            };
            let field_hash: Option<u64> = match ty {
                FieldType::Choice(variants) => {
                    let tag = table.scalar(slot, 1)?;
                    let payload = table.offset(slot + 1)?;
                    slot += 2;
                    match (tag, payload) {
                        (Some(tag), Some(at)) if tag > 0 => {
                            let index = (tag - 1) as u32;
                            let variant = variants
                                .get(index as usize)
                                .ok_or_else(|| err(format!("union tag {index} out of range")))?;
                            Some(Self::mix(
                                Self::mix(9, u64::from(index)),
                                self.checksum_union_payload(variant, at)?,
                            ))
                        }
                        (None, None) => None,
                        _ => return Err(err("union tag/payload slots inconsistent")),
                    }
                }
                ty if scalar_size(ty).is_some() => {
                    let size = scalar_size(ty).expect("checked");
                    let s = slot;
                    slot += 1;
                    match table.scalar(s, size)? {
                        Some(raw) => Some(self.checksum_scalar(ty, raw, size)?),
                        None => None,
                    }
                }
                ty => {
                    let s = slot;
                    slot += 1;
                    match table.offset(s)? {
                        Some(at) => Some(self.checksum_outline(ty, at)?),
                        None => None,
                    }
                }
            };
            let fh = match (optional, field_hash) {
                (true, Some(v)) => Self::mix(11, v),
                (true, None) => 10,
                (false, Some(v)) => v,
                (false, None) => {
                    return Err(err(format!(
                        "required field {}.{} absent",
                        schema.name, def.name
                    )))
                }
            };
            h = Self::mix(h, fh);
        }
        Ok(h)
    }
}

fn sign_extend(raw: u64, size: usize) -> i64 {
    if size >= 8 {
        return raw as i64;
    }
    let shift = 64 - size * 8;
    ((raw << shift) as i64) >> shift
}

impl WireFormat for Fastbuf {
    fn name(&self) -> &'static str {
        if self.svtable {
            NAME_OPT
        } else {
            NAME_STD
        }
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let (slots, vec_offsets) = SCRATCH.with(std::cell::Cell::take);
        let mut b = Builder {
            buf: std::mem::take(out),
            svtable: self.svtable,
            slots,
            vec_offsets,
        };
        b.buf.reserve(256);
        b.put_u32(0); // root placeholder
        let root = b.write_table(schema, value);
        if let Ok(root) = root {
            b.patch_u32(0, root as u32);
        }
        let Builder {
            buf,
            mut slots,
            mut vec_offsets,
            ..
        } = b;
        *out = buf;
        // Frame discipline leaves both scratches empty on success; clear
        // defensively on error so pooled capacity never carries stale state.
        slots.clear();
        vec_offsets.clear();
        SCRATCH.with(|s| s.set((slots, vec_offsets)));
        if root.is_err() {
            out.clear();
        }
        root.map(|_| ())
    }

    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value> {
        let reader = Reader {
            buf: bytes,
            svtable: self.svtable,
        };
        let root = FbTable::root(bytes)?;
        reader.read_table(schema, root)
    }

    fn traverse(&self, schema: &Schema, bytes: &[u8]) -> Result<u64> {
        let reader = Reader {
            buf: bytes,
            svtable: self.svtable,
        };
        let root = FbTable::root(bytes)?;
        reader.checksum_table(schema, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::FieldDef;
    use std::sync::Arc;

    fn round_trip(codec: &Fastbuf, schema: &Schema, value: &Value) -> Vec<u8> {
        let mut buf = Vec::new();
        codec.encode(schema, value, &mut buf).unwrap();
        let back = codec.decode(schema, &buf).unwrap();
        assert_eq!(&back, value, "round trip mismatch ({})", codec.name());
        buf
    }

    fn both() -> [Fastbuf; 2] {
        [Fastbuf::standard(), Fastbuf::optimized()]
    }

    fn scalar_schema() -> Schema {
        StructSchema::builder("Scalars")
            .field("b", FieldType::Bool)
            .field("u8", FieldType::UInt { bits: 8 })
            .field("u16", FieldType::UInt { bits: 16 })
            .field("u32", FieldType::UInt { bits: 32 })
            .field("u64", FieldType::UInt { bits: 64 })
            .field("i", FieldType::Int)
            .field("e", FieldType::Enum { variants: 5 })
            .field("c", FieldType::Constrained { lo: -50, hi: 1000 })
            .build()
    }

    fn scalar_value() -> Value {
        Value::Struct(vec![
            Value::Bool(true),
            Value::U64(200),
            Value::U64(60_000),
            Value::U64(4_000_000_000),
            Value::U64(1 << 60),
            Value::I64(-12345),
            Value::U64(4),
            Value::I64(-7),
        ])
    }

    #[test]
    fn scalars_round_trip_both_modes() {
        for codec in both() {
            round_trip(&codec, &scalar_schema(), &scalar_value());
        }
    }

    #[test]
    fn strings_vectors_and_nested_tables() {
        let inner = Arc::new(
            StructSchema::builder("Bearer")
                .field("id", FieldType::UInt { bits: 8 })
                .field("name", FieldType::Utf8 { max: None })
                .build(),
        );
        let schema = StructSchema::builder("Msg")
            .field("blob", FieldType::Bytes { max: None })
            .field(
                "ids",
                FieldType::List {
                    elem: Box::new(FieldType::UInt { bits: 32 }),
                    max: None,
                },
            )
            .field(
                "bearers",
                FieldType::List {
                    elem: Box::new(FieldType::Struct(inner.clone())),
                    max: None,
                },
            )
            .field("nested", FieldType::Struct(inner))
            .build();
        let v = Value::Struct(vec![
            Value::Bytes(vec![1, 2, 3, 4, 5]),
            Value::List(vec![Value::U64(10), Value::U64(20), Value::U64(30)]),
            Value::List(vec![
                Value::Struct(vec![Value::U64(1), Value::Str("default".into())]),
                Value::Struct(vec![Value::U64(2), Value::Str("voice".into())]),
            ]),
            Value::Struct(vec![Value::U64(9), Value::Str("video".into())]),
        ]);
        for codec in both() {
            round_trip(&codec, &schema, &v);
        }
    }

    #[test]
    fn optional_fields_absent_and_present() {
        let schema = StructSchema::builder("Opt")
            .field(
                "a",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 32 })),
            )
            .field(
                "s",
                FieldType::Optional(Box::new(FieldType::Utf8 { max: None })),
            )
            .field("req", FieldType::Bool)
            .build();
        for codec in both() {
            round_trip(
                &codec,
                &schema,
                &Value::Struct(vec![Value::none(), Value::none(), Value::Bool(true)]),
            );
            round_trip(
                &codec,
                &schema,
                &Value::Struct(vec![
                    Value::some(Value::U64(7)),
                    Value::some(Value::Str("hi".into())),
                    Value::Bool(false),
                ]),
            );
        }
    }

    fn union_schema() -> Schema {
        StructSchema::builder("WithUnion")
            .field(
                "id",
                FieldType::Choice(vec![
                    Variant {
                        name: "tmsi".into(),
                        ty: FieldType::UInt { bits: 32 },
                    },
                    Variant {
                        name: "imsi".into(),
                        ty: FieldType::Utf8 { max: None },
                    },
                    Variant {
                        name: "ctx".into(),
                        ty: FieldType::Struct(Arc::new(StructSchema {
                            name: "Ctx".into(),
                            fields: vec![
                                FieldDef {
                                    name: "a".into(),
                                    ty: FieldType::UInt { bits: 16 },
                                },
                                FieldDef {
                                    name: "b".into(),
                                    ty: FieldType::UInt { bits: 16 },
                                },
                            ],
                        })),
                    },
                ]),
            )
            .build()
    }

    #[test]
    fn unions_round_trip_all_variant_kinds() {
        let schema = union_schema();
        let cases = [
            Value::Struct(vec![Value::choice(0, Value::U64(0xAABB_CCDD))]),
            Value::Struct(vec![Value::choice(1, Value::Str("001010123456789".into()))]),
            Value::Struct(vec![Value::choice(
                2,
                Value::Struct(vec![Value::U64(1), Value::U64(2)]),
            )]),
        ];
        for codec in both() {
            for v in &cases {
                round_trip(&codec, &schema, v);
            }
        }
    }

    /// Builds a schema with `n` scalar-union fields and the matching value.
    fn n_union_message(n: usize, varlen: bool) -> (Schema, Value) {
        let mut b = StructSchema::builder("NUnions");
        for i in 0..n {
            b = b.field(
                format!("u{i}"),
                FieldType::Choice(vec![
                    Variant {
                        name: "tmsi".into(),
                        ty: FieldType::UInt { bits: 32 },
                    },
                    Variant {
                        name: "imsi".into(),
                        ty: FieldType::Utf8 { max: None },
                    },
                ]),
            );
        }
        let fields = (0..n)
            .map(|_| {
                if varlen {
                    Value::choice(1, Value::Str("001010123456".into()))
                } else {
                    Value::choice(0, Value::U64(0xAABB_CCDD))
                }
            })
            .collect();
        (b.build(), Value::Struct(fields))
    }

    fn size_delta(n: usize, varlen: bool) -> usize {
        let (schema, v) = n_union_message(n, varlen);
        let mut std_buf = Vec::new();
        let mut opt_buf = Vec::new();
        Fastbuf::standard()
            .encode(&schema, &v, &mut std_buf)
            .unwrap();
        Fastbuf::optimized()
            .encode(&schema, &v, &mut opt_buf)
            .unwrap();
        std_buf.len() - opt_buf.len()
    }

    #[test]
    fn svtable_saves_ten_bytes_per_scalar_union() {
        // The paper's −10 B is the per-union metadata reduction; a single
        // message can absorb up to 2 bytes in alignment-padding parity, so
        // assert the exact marginal saving across growing union counts and
        // a ≥8 B absolute saving on one union.
        let marginal = size_delta(3, false) - size_delta(1, false);
        assert_eq!(marginal, 20, "2 extra scalar unions must save 2×10 bytes");
        assert!(size_delta(1, false) >= 8);
    }

    #[test]
    fn svtable_saves_fourteen_bytes_per_varlen_union() {
        let marginal = size_delta(3, true) - size_delta(1, true);
        assert_eq!(marginal, 28, "2 extra varlen unions must save 2×14 bytes");
        assert!(size_delta(1, true) >= 12);
    }

    #[test]
    fn struct_variant_unions_cost_the_same_in_both_modes() {
        let schema = union_schema();
        let v = Value::Struct(vec![Value::choice(
            2,
            Value::Struct(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let mut std_buf = Vec::new();
        let mut opt_buf = Vec::new();
        Fastbuf::standard()
            .encode(&schema, &v, &mut std_buf)
            .unwrap();
        Fastbuf::optimized()
            .encode(&schema, &v, &mut opt_buf)
            .unwrap();
        assert_eq!(std_buf.len(), opt_buf.len());
    }

    #[test]
    fn traverse_matches_decode_checksum() {
        let inner = Arc::new(
            StructSchema::builder("Inner")
                .field("x", FieldType::Constrained { lo: 0, hi: 300 })
                .field("bits", FieldType::BitString { max_bits: None })
                .build(),
        );
        let schema = StructSchema::builder("T")
            .field("u", FieldType::UInt { bits: 32 })
            .field("s", FieldType::Utf8 { max: None })
            .field(
                "opt",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 16 })),
            )
            .field("inner", FieldType::Struct(inner))
            .field(
                "ch",
                FieldType::Choice(vec![
                    Variant {
                        name: "n".into(),
                        ty: FieldType::UInt { bits: 64 },
                    },
                    Variant {
                        name: "s".into(),
                        ty: FieldType::Bytes { max: None },
                    },
                ]),
            )
            .build();
        let v = Value::Struct(vec![
            Value::U64(1234),
            Value::Str("tracking".into()),
            Value::none(),
            Value::Struct(vec![
                Value::U64(250),
                Value::Bits(vec![true, false, true, true, false]),
            ]),
            Value::choice(1, Value::Bytes(vec![9, 8, 7])),
        ]);
        for codec in both() {
            let mut buf = Vec::new();
            codec.encode(&schema, &v, &mut buf).unwrap();
            let via_decode = crate::checksum_value(&codec.decode(&schema, &buf).unwrap());
            let via_traverse = codec.traverse(&schema, &buf).unwrap();
            assert_eq!(via_decode, via_traverse, "mode {}", codec.name());
            assert_eq!(via_decode, crate::checksum_value(&v));
        }
    }

    #[test]
    fn corrupt_buffers_error_instead_of_panicking() {
        let schema = scalar_schema();
        let v = scalar_value();
        let codec = Fastbuf::standard();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let _ = codec.decode(&schema, &buf[..cut]);
            let _ = codec.traverse(&schema, &buf[..cut]);
        }
        // Flip bytes too.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let _ = codec.decode(&schema, &bad);
        }
    }

    #[test]
    fn fastbuf_is_larger_than_per_on_the_same_message() {
        // Fig. 20's premise: FB trades size for speed.
        let schema = scalar_schema();
        let v = scalar_value();
        let mut fb = Vec::new();
        let mut per = Vec::new();
        Fastbuf::standard().encode(&schema, &v, &mut fb).unwrap();
        crate::per::Asn1Per::new()
            .encode(&schema, &v, &mut per)
            .unwrap();
        assert!(
            fb.len() > per.len(),
            "fastbuf {} must exceed per {}",
            fb.len(),
            per.len()
        );
    }

    #[test]
    fn zero_copy_view_reads_fields_directly() {
        let schema = StructSchema::builder("V")
            .field("a", FieldType::UInt { bits: 32 })
            .field("b", FieldType::UInt { bits: 8 })
            .build();
        let v = Value::Struct(vec![Value::U64(0xCAFE_F00D), Value::U64(42)]);
        let codec = Fastbuf::standard();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        let table = FbTable::root(&buf).unwrap();
        assert_eq!(table.scalar(0, 4).unwrap(), Some(0xCAFE_F00D));
        assert_eq!(table.scalar(1, 1).unwrap(), Some(42));
        assert_eq!(table.slot(5).unwrap(), None, "absent slot reads as None");
    }
}
