//! An aligned ASN.1 Packed Encoding Rules (PER) subset — the baseline
//! serializer of existing cellular networks (§3.2).
//!
//! The subset keeps exactly the properties the paper identifies as ASN.1's
//! cost drivers:
//!
//! * **bit-level packing** — booleans are one bit, constrained integers use
//!   `ceil(log2(range))` bits, structs start with a presence preamble of one
//!   bit per OPTIONAL field;
//! * **sequential traversal** — no field can be located without decoding
//!   every preceding bit;
//! * **decode-time allocation** — decoding materializes an owned tree,
//!   allocating for every struct, string, and list (as asn1c-generated code
//!   allocates per information element);
//! * **length determinants** — unbounded strings/lists carry the standard
//!   1-or-2-octet aligned determinant; bounded ones use a constrained count.
//!
//! In exchange PER produces the smallest messages of all codecs here, which
//! is why Fig. 20 shows ASN.1 as the size floor.

use crate::bits::{bits_for_range, BitReader, BitWriter};
use crate::value::{FieldType, Schema, StructSchema, Value};
use crate::WireFormat;
use neutrino_common::{Error, Result};

/// The ASN.1 aligned-PER codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct Asn1Per;

const NAME: &str = "asn1-per";

impl Asn1Per {
    /// Creates the codec.
    pub fn new() -> Self {
        Asn1Per
    }
}

impl WireFormat for Asn1Per {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let mut w = BitWriter::new();
        encode_struct(schema, value, &mut w)?;
        *out = w.finish();
        Ok(())
    }

    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value> {
        let mut r = BitReader::new(bytes);
        decode_struct(schema, &mut r)
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec(NAME, detail.into())
}

fn encode_struct(schema: &StructSchema, value: &Value, w: &mut BitWriter) -> Result<()> {
    let fields = value
        .as_struct()
        .ok_or_else(|| err(format!("expected struct for {}", schema.name)))?;
    if fields.len() != schema.fields.len() {
        return Err(err(format!(
            "struct {} arity mismatch: {} vs {}",
            schema.name,
            schema.fields.len(),
            fields.len()
        )));
    }
    // Presence preamble: one bit per OPTIONAL field, in schema order.
    for (def, val) in schema.fields.iter().zip(fields) {
        if matches!(def.ty, FieldType::Optional(_)) {
            match val {
                Value::Optional(opt) => w.write_bit(opt.is_some()),
                _ => return Err(err(format!("field {} is not optional-shaped", def.name))),
            }
        }
    }
    for (def, val) in schema.fields.iter().zip(fields) {
        match (&def.ty, val) {
            (FieldType::Optional(inner), Value::Optional(opt)) => {
                if let Some(v) = opt {
                    encode_field(inner, v, w)?;
                }
            }
            (ty, v) => encode_field(ty, v, w)?,
        }
    }
    Ok(())
}

fn encode_field(ty: &FieldType, value: &Value, w: &mut BitWriter) -> Result<()> {
    match (ty, value) {
        (FieldType::Bool, Value::Bool(b)) => {
            w.write_bit(*b);
            Ok(())
        }
        (FieldType::UInt { bits }, Value::U64(x)) => {
            if *bits == 64 {
                // Full-range 64-bit fields: aligned fixed octets (constrained
                // whole numbers cannot span more than an i64 range).
                w.align();
                w.write_bytes(&x.to_be_bytes());
                Ok(())
            } else {
                encode_constrained(0, max_for_bits(*bits), *x as i64, w)
            }
        }
        (FieldType::Int, Value::I64(x)) => {
            // Unconstrained INTEGER: aligned, 1-octet length, minimal
            // two's-complement octets.
            w.align();
            let octets = minimal_twos_complement(*x);
            w.write_bytes(&[octets.len() as u8]);
            w.write_bytes(&octets);
            Ok(())
        }
        (FieldType::Constrained { lo, hi }, v) => {
            let x = crate::value::integer_carrier(v)
                .ok_or_else(|| err("constrained field is not an integer"))?;
            if x < *lo || x > *hi {
                return Err(err(format!("value {x} outside [{lo}, {hi}]")));
            }
            encode_constrained(*lo, *hi, x, w)
        }
        (FieldType::Enum { variants }, Value::U64(x)) => {
            encode_constrained(0, i64::from(*variants) - 1, *x as i64, w)
        }
        (FieldType::Bytes { max }, Value::Bytes(bs)) => {
            encode_length(bs.len(), *max, w)?;
            w.align();
            w.write_bytes(bs);
            Ok(())
        }
        (FieldType::Utf8 { max }, Value::Str(s)) => {
            encode_length(s.len(), *max, w)?;
            w.align();
            w.write_bytes(s.as_bytes());
            Ok(())
        }
        (FieldType::BitString { max_bits }, Value::Bits(bits)) => {
            encode_length(bits.len(), *max_bits, w)?;
            for &b in bits {
                w.write_bit(b);
            }
            Ok(())
        }
        (FieldType::Struct(schema), v) => encode_struct(schema, v, w),
        (FieldType::List { elem, max }, Value::List(items)) => {
            encode_length(items.len(), *max, w)?;
            for item in items {
                encode_field(elem, item, w)?;
            }
            Ok(())
        }
        (FieldType::Choice(variants), Value::Choice { index, value }) => {
            let n = variants.len();
            if *index as usize >= n {
                return Err(err(format!("choice index {index} out of range")));
            }
            encode_constrained(0, n as i64 - 1, i64::from(*index), w)?;
            encode_field(&variants[*index as usize].ty, value, w)
        }
        (FieldType::Optional(inner), Value::Optional(opt)) => {
            // Standalone optional (e.g. a list element): explicit presence bit.
            w.write_bit(opt.is_some());
            if let Some(v) = opt {
                encode_field(inner, v, w)?;
            }
            Ok(())
        }
        (ty, v) => Err(err(format!("type mismatch: {ty:?} vs {v:?}"))),
    }
}

fn decode_struct(schema: &StructSchema, r: &mut BitReader<'_>) -> Result<Value> {
    // Presence preamble first.
    let mut present = Vec::with_capacity(schema.fields.len());
    for def in &schema.fields {
        if matches!(def.ty, FieldType::Optional(_)) {
            present.push(Some(r.read_bit()?));
        } else {
            present.push(None);
        }
    }
    let mut fields = Vec::with_capacity(schema.fields.len());
    for (def, presence) in schema.fields.iter().zip(present) {
        match (&def.ty, presence) {
            (FieldType::Optional(inner), Some(true)) => {
                fields.push(Value::Optional(Some(Box::new(decode_field(inner, r)?))));
            }
            (FieldType::Optional(_), Some(false)) => fields.push(Value::Optional(None)),
            (ty, _) => fields.push(decode_field(ty, r)?),
        }
    }
    Ok(Value::Struct(fields))
}

fn decode_field(ty: &FieldType, r: &mut BitReader<'_>) -> Result<Value> {
    match ty {
        FieldType::Bool => Ok(Value::Bool(r.read_bit()?)),
        FieldType::UInt { bits } => {
            if *bits == 64 {
                r.align();
                let raw = r.read_bytes(8)?;
                Ok(Value::U64(u64::from_be_bytes(raw.try_into().expect("8"))))
            } else {
                let v = decode_constrained(0, max_for_bits(*bits), r)?;
                Ok(Value::U64(v as u64))
            }
        }
        FieldType::Int => {
            r.align();
            let len = r.read_bytes(1)?[0] as usize;
            if len == 0 || len > 8 {
                return Err(err(format!("bad INTEGER length {len}")));
            }
            let octets = r.read_bytes(len)?;
            let mut v: i64 = if octets[0] & 0x80 != 0 { -1 } else { 0 };
            for &b in octets {
                v = (v << 8) | i64::from(b);
            }
            Ok(Value::I64(v))
        }
        FieldType::Constrained { lo, hi } => {
            let v = decode_constrained(*lo, *hi, r)?;
            if *lo >= 0 {
                Ok(Value::U64(v as u64))
            } else {
                Ok(Value::I64(v))
            }
        }
        FieldType::Enum { variants } => {
            let v = decode_constrained(0, i64::from(*variants) - 1, r)?;
            Ok(Value::U64(v as u64))
        }
        FieldType::Bytes { max } => {
            let len = decode_length(*max, r)?;
            r.align();
            Ok(Value::Bytes(r.read_bytes(len)?.to_vec()))
        }
        FieldType::Utf8 { max } => {
            let len = decode_length(*max, r)?;
            r.align();
            let bytes = r.read_bytes(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| err("invalid UTF-8 in string field"))?;
            Ok(Value::Str(s.to_owned()))
        }
        FieldType::BitString { max_bits } => {
            let len = decode_length(*max_bits, r)?;
            let mut bits = Vec::with_capacity(len);
            for _ in 0..len {
                bits.push(r.read_bit()?);
            }
            Ok(Value::Bits(bits))
        }
        FieldType::Struct(schema) => decode_struct(schema, r),
        FieldType::List { elem, max } => {
            let len = decode_length(*max, r)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_field(elem, r)?);
            }
            Ok(Value::List(items))
        }
        FieldType::Choice(variants) => {
            let idx = decode_constrained(0, variants.len() as i64 - 1, r)? as u32;
            let var = variants
                .get(idx as usize)
                .ok_or_else(|| err(format!("choice index {idx} out of range")))?;
            Ok(Value::Choice {
                index: idx,
                value: Box::new(decode_field(&var.ty, r)?),
            })
        }
        FieldType::Optional(inner) => {
            let present = r.read_bit()?;
            if present {
                Ok(Value::Optional(Some(Box::new(decode_field(inner, r)?))))
            } else {
                Ok(Value::Optional(None))
            }
        }
    }
}

/// Encodes a constrained whole number per aligned PER:
/// * ranges representable in ≤16 bits are written as an unaligned bit field;
/// * wider ranges are byte-aligned and written in the minimal number of
///   whole octets for the range.
fn encode_constrained(lo: i64, hi: i64, x: i64, w: &mut BitWriter) -> Result<()> {
    if x < lo || x > hi {
        return Err(err(format!("value {x} outside [{lo}, {hi}]")));
    }
    let range = (hi as i128 - lo as i128) as u128;
    if range == 0 {
        return Ok(()); // single-valued: encodes in zero bits
    }
    let offset = (x as i128 - lo as i128) as u128;
    let bits = bits_for_range_u128(range);
    if bits <= 16 {
        w.write_bits(offset as u64, bits);
    } else {
        w.align();
        let octets = bits.div_ceil(8) as usize;
        let be = (offset as u64).to_be_bytes();
        w.write_bytes(&be[8 - octets..]);
    }
    Ok(())
}

fn decode_constrained(lo: i64, hi: i64, r: &mut BitReader<'_>) -> Result<i64> {
    let range = (hi as i128 - lo as i128) as u128;
    if range == 0 {
        return Ok(lo);
    }
    let bits = bits_for_range_u128(range);
    let offset = if bits <= 16 {
        r.read_bits(bits)?
    } else {
        r.align();
        let octets = bits.div_ceil(8) as usize;
        let raw = r.read_bytes(octets)?;
        let mut v = 0u64;
        for &b in raw {
            v = (v << 8) | u64::from(b);
        }
        v
    };
    let val = lo as i128 + offset as i128;
    if val > hi as i128 {
        return Err(err(format!("decoded offset {offset} exceeds range")));
    }
    Ok(val as i64)
}

fn bits_for_range_u128(range: u128) -> u8 {
    if range <= u64::MAX as u128 {
        bits_for_range(range as u64)
    } else {
        // range == 2^64..2^65-1 can only arise from [i64::MIN, i64::MAX].
        64
    }
}

/// Encodes a length: a constrained count when a max is known and fits 64K,
/// otherwise the standard aligned general length determinant (1 octet for
/// < 128, 2 octets `10xxxxxx xxxxxxxx` for < 16384).
fn encode_length(len: usize, max: Option<u32>, w: &mut BitWriter) -> Result<()> {
    match max {
        Some(m) if m < 65_536 => {
            if len > m as usize {
                return Err(err(format!("length {len} exceeds bound {m}")));
            }
            encode_constrained(0, i64::from(m), len as i64, w)
        }
        _ => {
            w.align();
            if len < 128 {
                w.write_bytes(&[len as u8]);
                Ok(())
            } else if len < 16_384 {
                let v = 0x8000u16 | len as u16;
                w.write_bytes(&v.to_be_bytes());
                Ok(())
            } else {
                Err(err(format!(
                    "length {len} needs fragmentation (unsupported)"
                )))
            }
        }
    }
}

fn decode_length(max: Option<u32>, r: &mut BitReader<'_>) -> Result<usize> {
    match max {
        Some(m) if m < 65_536 => Ok(decode_constrained(0, i64::from(m), r)? as usize),
        _ => {
            r.align();
            let first = r.read_bytes(1)?[0];
            if first & 0x80 == 0 {
                Ok(first as usize)
            } else if first & 0xC0 == 0x80 {
                let second = r.read_bytes(1)?[0];
                Ok(((usize::from(first) & 0x3F) << 8) | usize::from(second))
            } else {
                Err(err("fragmented length determinant (unsupported)"))
            }
        }
    }
}

fn max_for_bits(bits: u8) -> i64 {
    match bits {
        8 => 0xFF,
        16 => 0xFFFF,
        32 => 0xFFFF_FFFF,
        // 64-bit fields take the raw-octet path in encode/decode.
        64 => i64::MAX,
        other => (1i64 << other) - 1,
    }
}

fn minimal_twos_complement(x: i64) -> Vec<u8> {
    let be = x.to_be_bytes();
    let mut start = 0;
    while start < 7 {
        let cur = be[start];
        let next = be[start + 1];
        // Drop a leading octet if it is pure sign extension.
        if (cur == 0x00 && next & 0x80 == 0) || (cur == 0xFF && next & 0x80 != 0) {
            start += 1;
        } else {
            break;
        }
    }
    be[start..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{StructSchema, Variant};
    use std::sync::Arc;

    fn round_trip(schema: &Schema, value: &Value) -> Vec<u8> {
        let codec = Asn1Per::new();
        let mut buf = Vec::new();
        codec.encode(schema, value, &mut buf).unwrap();
        let back = codec.decode(schema, &buf).unwrap();
        assert_eq!(&back, value, "round trip mismatch");
        buf
    }

    #[test]
    fn booleans_pack_into_bits() {
        let schema = StructSchema::builder("Flags")
            .field("a", FieldType::Bool)
            .field("b", FieldType::Bool)
            .field("c", FieldType::Bool)
            .build();
        let v = Value::Struct(vec![
            Value::Bool(true),
            Value::Bool(false),
            Value::Bool(true),
        ]);
        let buf = round_trip(&schema, &v);
        assert_eq!(buf.len(), 1, "three bools must fit one octet");
    }

    #[test]
    fn constrained_int_uses_minimal_bits() {
        // range 0..=7 → 3 bits; two of them + 2 bools = 8 bits exactly.
        let schema = StructSchema::builder("Small")
            .field("x", FieldType::Constrained { lo: 0, hi: 7 })
            .field("y", FieldType::Constrained { lo: 0, hi: 7 })
            .field("f1", FieldType::Bool)
            .field("f2", FieldType::Bool)
            .build();
        let v = Value::Struct(vec![
            Value::U64(5),
            Value::U64(2),
            Value::Bool(true),
            Value::Bool(false),
        ]);
        let buf = round_trip(&schema, &v);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn negative_constrained_round_trips() {
        let schema = StructSchema::builder("Neg")
            .field("t", FieldType::Constrained { lo: -100, hi: 100 })
            .build();
        for x in [-100i64, -1, 0, 57, 100] {
            let v = Value::Struct(vec![if x >= 0 {
                Value::U64(x as u64)
            } else {
                Value::I64(x)
            }]);
            let codec = Asn1Per::new();
            let mut buf = Vec::new();
            codec.encode(&schema, &v, &mut buf).unwrap();
            let back = codec.decode(&schema, &buf).unwrap();
            let got = back.as_struct().unwrap()[0].clone();
            let got_i = crate::value::integer_carrier(&got).unwrap();
            assert_eq!(got_i, x);
        }
    }

    #[test]
    fn wide_constrained_aligns_to_octets() {
        let schema = StructSchema::builder("Wide")
            .field("flag", FieldType::Bool)
            .field(
                "teid",
                FieldType::Constrained {
                    lo: 0,
                    hi: 0xFFFF_FFFF,
                },
            )
            .build();
        let v = Value::Struct(vec![Value::Bool(true), Value::U64(0xDEAD_BEEF)]);
        let buf = round_trip(&schema, &v);
        // 1 bit flag, align (7 bits pad), 4 octets TEID.
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn unconstrained_int_minimal_octets() {
        let schema = StructSchema::builder("I")
            .field("x", FieldType::Int)
            .build();
        for (x, expect_len) in [
            (0i64, 1usize),
            (127, 1),
            (128, 2),
            (-1, 1),
            (-129, 2),
            (i64::MAX, 8),
            (i64::MIN, 8),
        ] {
            let v = Value::Struct(vec![Value::I64(x)]);
            let codec = Asn1Per::new();
            let mut buf = Vec::new();
            codec.encode(&schema, &v, &mut buf).unwrap();
            assert_eq!(buf.len(), 1 + expect_len, "for {x}");
            assert_eq!(codec.decode(&schema, &buf).unwrap(), v);
        }
    }

    #[test]
    fn optional_preamble_bits() {
        let schema = StructSchema::builder("Opt")
            .field(
                "a",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 8 })),
            )
            .field(
                "b",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 8 })),
            )
            .build();
        let both_absent = Value::Struct(vec![Value::none(), Value::none()]);
        let buf = round_trip(&schema, &both_absent);
        assert_eq!(buf.len(), 1, "two preamble bits only");
        let one_present = Value::Struct(vec![Value::some(Value::U64(200)), Value::none()]);
        round_trip(&schema, &one_present);
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let schema = StructSchema::builder("S")
            .field("name", FieldType::Utf8 { max: Some(64) })
            .field("blob", FieldType::Bytes { max: None })
            .build();
        let v = Value::Struct(vec![
            Value::Str("tracking-area-42".into()),
            Value::Bytes((0..200).map(|i| i as u8).collect()),
        ]);
        round_trip(&schema, &v);
    }

    #[test]
    fn long_unbounded_length_uses_two_octets() {
        let schema = StructSchema::builder("B")
            .field("blob", FieldType::Bytes { max: None })
            .build();
        let v = Value::Struct(vec![Value::Bytes(vec![7u8; 1000])]);
        let buf = round_trip(&schema, &v);
        assert_eq!(buf.len(), 2 + 1000);
    }

    #[test]
    fn bounded_length_rejected_when_exceeded() {
        let schema = StructSchema::builder("B")
            .field("blob", FieldType::Bytes { max: Some(4) })
            .build();
        let v = Value::Struct(vec![Value::Bytes(vec![0u8; 5])]);
        let codec = Asn1Per::new();
        let mut buf = Vec::new();
        assert!(codec.encode(&schema, &v, &mut buf).is_err());
    }

    #[test]
    fn bit_string_round_trips() {
        let schema = StructSchema::builder("BS")
            .field("mask", FieldType::BitString { max_bits: Some(40) })
            .build();
        let bits: Vec<bool> = (0..27).map(|i| i % 3 == 0).collect();
        let v = Value::Struct(vec![Value::Bits(bits)]);
        round_trip(&schema, &v);
    }

    #[test]
    fn nested_struct_and_list() {
        let inner = Arc::new(
            StructSchema::builder("Bearer")
                .field("id", FieldType::Constrained { lo: 0, hi: 15 })
                .field("qci", FieldType::Constrained { lo: 1, hi: 9 })
                .build(),
        );
        let schema = StructSchema::builder("Session")
            .field(
                "bearers",
                FieldType::List {
                    elem: Box::new(FieldType::Struct(inner)),
                    max: Some(11),
                },
            )
            .build();
        let v = Value::Struct(vec![Value::List(vec![
            Value::Struct(vec![Value::U64(5), Value::U64(9)]),
            Value::Struct(vec![Value::U64(6), Value::U64(1)]),
        ])]);
        round_trip(&schema, &v);
    }

    #[test]
    fn choice_round_trips() {
        let schema = StructSchema::builder("C")
            .field(
                "id",
                FieldType::Choice(vec![
                    Variant {
                        name: "tmsi".into(),
                        ty: FieldType::UInt { bits: 32 },
                    },
                    Variant {
                        name: "imsi".into(),
                        ty: FieldType::Utf8 { max: Some(15) },
                    },
                ]),
            )
            .build();
        round_trip(
            &schema,
            &Value::Struct(vec![Value::choice(0, Value::U64(0xABCD_1234))]),
        );
        round_trip(
            &schema,
            &Value::Struct(vec![Value::choice(1, Value::Str("001010123456789".into()))]),
        );
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let schema = StructSchema::builder("S")
            .field("x", FieldType::UInt { bits: 32 })
            .field("name", FieldType::Utf8 { max: None })
            .build();
        let v = Value::Struct(vec![Value::U64(7), Value::Str("hello".into())]);
        let codec = Asn1Per::new();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let _ = codec.decode(&schema, &buf[..cut]); // must not panic
        }
    }

    #[test]
    fn traverse_matches_checksum_of_decode() {
        let schema = StructSchema::builder("S")
            .field("x", FieldType::UInt { bits: 16 })
            .field("s", FieldType::Utf8 { max: Some(8) })
            .build();
        let v = Value::Struct(vec![Value::U64(999), Value::Str("abc".into())]);
        let codec = Asn1Per::new();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        let t = codec.traverse(&schema, &buf).unwrap();
        assert_eq!(t, crate::checksum_value(&v));
    }
}
