//! Codec cost calibration.
//!
//! The discrete-event simulator charges CPU time for every message a node
//! serializes or parses. Those charges come from a cost table (see `neutrino-messages::costs`) produced by
//! actually running this crate's codecs on the concrete control messages —
//! so the *relative* performance of Neutrino vs. the ASN.1 baselines in the
//! PCT figures is grounded in real measured work, not in assumed constants.
//!
//! [`measure`] runs `encode` and `traverse` (the native read path, see the
//! crate docs) in a tight loop with warm-up and reports the median of
//! several batches — median over batches is robust against scheduler noise.
//! `neutrino-messages` bakes in a table measured once on the development
//! machine (documented there) so simulations stay deterministic; callers can
//! recalibrate at startup with [`measure`] when absolute local numbers
//! matter.

use crate::value::{Schema, Value};
use crate::WireFormat;
use neutrino_common::time::Duration;
use neutrino_common::Result;

/// Measured per-message costs for one `(codec, message)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgCost {
    /// Time to encode the message once.
    pub encode: Duration,
    /// Time to read every field once through the codec's native path.
    pub access: Duration,
    /// Encoded size in bytes.
    pub wire_bytes: usize,
}

impl MsgCost {
    /// Builds a cost entry from raw nanosecond figures (used for the baked-in
    /// defaults).
    pub const fn from_nanos(encode_ns: u64, access_ns: u64, wire_bytes: usize) -> Self {
        MsgCost {
            encode: Duration::from_nanos(encode_ns),
            access: Duration::from_nanos(access_ns),
            wire_bytes,
        }
    }

    /// Total encode + access cost.
    pub fn total(&self) -> Duration {
        self.encode + self.access
    }
}

/// Options controlling a calibration run.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationOptions {
    /// Iterations per timed batch.
    pub iters_per_batch: u32,
    /// Number of timed batches; the median batch is reported.
    pub batches: u32,
    /// Warm-up iterations before timing.
    pub warmup_iters: u32,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            iters_per_batch: 2_000,
            batches: 9,
            warmup_iters: 1_000,
        }
    }
}

/// Measures encode and native-access costs of `codec` on `(schema, value)`.
pub fn measure(
    codec: &dyn WireFormat,
    schema: &Schema,
    value: &Value,
    opts: CalibrationOptions,
) -> Result<MsgCost> {
    let mut buf = Vec::with_capacity(1024);
    codec.encode(schema, value, &mut buf)?;
    let wire_bytes = buf.len();

    // Warm-up: touch both paths so caches/branch predictors settle.
    let mut sink = 0u64;
    for _ in 0..opts.warmup_iters {
        codec.encode(schema, value, &mut buf)?;
        sink ^= codec.traverse(schema, &buf)?;
    }

    let encode = median_batch_ns(opts, || {
        // Reusing the buffer mirrors how the CPF reuses serialization
        // arenas; allocation of the output buffer is not what the paper
        // compares.
        codec
            .encode(schema, value, &mut buf)
            .expect("encode succeeded during warm-up");
    });

    codec.encode(schema, value, &mut buf)?;
    let encoded = buf.clone();
    let access = median_batch_ns(opts, || {
        sink ^= codec
            .traverse(schema, &encoded)
            .expect("traverse succeeded during warm-up");
    });

    // Keep `sink` alive so the traversals cannot be optimized away.
    std::hint::black_box(sink);

    Ok(MsgCost {
        encode,
        access,
        wire_bytes,
    })
}

fn median_batch_ns(opts: CalibrationOptions, mut op: impl FnMut()) -> Duration {
    let mut per_op: Vec<u64> = Vec::with_capacity(opts.batches as usize);
    for _ in 0..opts.batches {
        // lint-allow(wall-clock): calibration measures real host CPU time by design (offline, never inside a simulation)
        let start = std::time::Instant::now();
        for _ in 0..opts.iters_per_batch {
            op();
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        per_op.push(elapsed / u64::from(opts.iters_per_batch).max(1));
    }
    per_op.sort_unstable();
    Duration::from_nanos(per_op[per_op.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{FieldType, StructSchema};
    use crate::CodecKind;

    fn sample() -> (Schema, Value) {
        let schema = StructSchema::builder("Cal")
            .field("a", FieldType::UInt { bits: 32 })
            .field("b", FieldType::Utf8 { max: Some(32) })
            .field("c", FieldType::Constrained { lo: 0, hi: 4095 })
            .build();
        let value = Value::Struct(vec![
            Value::U64(77),
            Value::Str("calibration".into()),
            Value::U64(2048),
        ]);
        (schema, value)
    }

    #[test]
    fn measure_reports_positive_costs() {
        let (schema, value) = sample();
        let opts = CalibrationOptions {
            iters_per_batch: 50,
            batches: 3,
            warmup_iters: 10,
        };
        for kind in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
            let codec = kind.instance();
            let cost = measure(codec.as_ref(), &schema, &value, opts).unwrap();
            assert!(cost.encode.as_nanos() > 0, "{kind}: encode cost zero");
            assert!(cost.access.as_nanos() > 0, "{kind}: access cost zero");
            assert!(cost.wire_bytes > 0);
        }
    }

    #[test]
    fn from_nanos_round_trips() {
        let c = MsgCost::from_nanos(100, 250, 64);
        assert_eq!(c.encode.as_nanos(), 100);
        assert_eq!(c.access.as_nanos(), 250);
        assert_eq!(c.total().as_nanos(), 350);
        assert_eq!(c.wire_bytes, 64);
    }
}
