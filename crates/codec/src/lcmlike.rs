//! An LCM-like format (Fig. 18 comparator).
//!
//! Lightweight Communications and Marshalling serializes fields in fixed
//! order, big-endian, with an 8-byte type fingerprint in front of every
//! message. It is very fast for small flat messages, but — as the paper
//! notes in §4.1/§4.4 — it cannot express the unions cellular control
//! messages use widely, so [`WireFormat::supports`] returns `false` for any
//! schema containing a [`FieldType::Choice`]. It also has no constrained
//! integer types, so constrained fields are carried at full 8-byte width
//! (one reason its messages are bigger than PER's).

use crate::value::{FieldType, Schema, StructSchema, Value};
use crate::WireFormat;
use neutrino_common::{Error, Result};

/// The LCM-like codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct LcmLike;

const NAME: &str = "lcm";

impl LcmLike {
    /// Creates the codec.
    pub fn new() -> Self {
        LcmLike
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec(NAME, detail.into())
}

/// FNV-1a over a canonical rendering of the schema — stands in for LCM's
/// type fingerprint.
pub fn fingerprint(schema: &StructSchema) -> u64 {
    fn fold(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn fold_ty(h: &mut u64, ty: &FieldType) {
        match ty {
            FieldType::Bool => fold(h, b"bool"),
            FieldType::UInt { bits } => fold(h, format!("u{bits}").as_bytes()),
            FieldType::Int => fold(h, b"int"),
            FieldType::Constrained { lo, hi } => {
                fold(h, format!("c{lo}:{hi}").as_bytes());
            }
            FieldType::Enum { variants } => fold(h, format!("e{variants}").as_bytes()),
            FieldType::Bytes { .. } => fold(h, b"bytes"),
            FieldType::Utf8 { .. } => fold(h, b"str"),
            FieldType::BitString { .. } => fold(h, b"bits"),
            FieldType::Struct(s) => {
                fold(h, s.name.as_bytes());
                for f in &s.fields {
                    fold(h, f.name.as_bytes());
                    fold_ty(h, &f.ty);
                }
            }
            FieldType::List { elem, .. } => {
                fold(h, b"list");
                fold_ty(h, elem);
            }
            FieldType::Choice(vs) => {
                fold(h, b"choice");
                for v in vs {
                    fold(h, v.name.as_bytes());
                    fold_ty(h, &v.ty);
                }
            }
            FieldType::Optional(inner) => {
                fold(h, b"opt");
                fold_ty(h, inner);
            }
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fold(&mut h, schema.name.as_bytes());
    for f in &schema.fields {
        fold(&mut h, f.name.as_bytes());
        fold_ty(&mut h, &f.ty);
    }
    h
}

fn encode_field(ty: &FieldType, value: &Value, out: &mut Vec<u8>) -> Result<()> {
    match (ty, value) {
        (FieldType::Bool, Value::Bool(b)) => {
            out.push(u8::from(*b));
            Ok(())
        }
        (FieldType::UInt { bits }, Value::U64(x)) => {
            let w = usize::from(*bits) / 8;
            out.extend_from_slice(&x.to_be_bytes()[8 - w..]);
            Ok(())
        }
        (FieldType::Int, Value::I64(x)) => {
            out.extend_from_slice(&x.to_be_bytes());
            Ok(())
        }
        (FieldType::Constrained { .. }, v) => {
            let x = crate::value::integer_carrier(v)
                .ok_or_else(|| err("constrained field is not an integer"))?;
            // LCM has no range types: full-width int64.
            out.extend_from_slice(&x.to_be_bytes());
            Ok(())
        }
        (FieldType::Enum { .. }, Value::U64(x)) => {
            out.extend_from_slice(&(*x as u32).to_be_bytes());
            Ok(())
        }
        (FieldType::Bytes { .. }, Value::Bytes(bs)) => {
            out.extend_from_slice(&(bs.len() as u32).to_be_bytes());
            out.extend_from_slice(bs);
            Ok(())
        }
        (FieldType::Utf8 { .. }, Value::Str(s)) => {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
            Ok(())
        }
        (FieldType::BitString { .. }, Value::Bits(bits)) => {
            out.extend_from_slice(&(bits.len() as u32).to_be_bytes());
            let mut packed = vec![0u8; bits.len().div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    packed[i / 8] |= 0x80 >> (i % 8);
                }
            }
            out.extend_from_slice(&packed);
            Ok(())
        }
        (FieldType::Struct(schema), v) => encode_struct_body(schema, v, out),
        (FieldType::List { elem, .. }, Value::List(items)) => {
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                encode_field(elem, item, out)?;
            }
            Ok(())
        }
        (FieldType::Choice(_), _) => Err(err("LCM cannot express unions")),
        (FieldType::Optional(inner), Value::Optional(opt)) => {
            out.push(u8::from(opt.is_some()));
            if let Some(v) = opt {
                encode_field(inner, v, out)?;
            }
            Ok(())
        }
        (ty, v) => Err(err(format!("type mismatch: {ty:?} vs {v:?}"))),
    }
}

fn encode_struct_body(schema: &StructSchema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
    let fields = value
        .as_struct()
        .ok_or_else(|| err(format!("expected struct for {}", schema.name)))?;
    if fields.len() != schema.fields.len() {
        return Err(err(format!("struct {} arity mismatch", schema.name)));
    }
    for (def, val) in schema.fields.iter().zip(fields) {
        encode_field(&def.ty, val, out)?;
    }
    Ok(())
}

struct LcmReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> LcmReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err(format!("truncated at byte {}", self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn decode(&mut self, ty: &FieldType) -> Result<Value> {
        match ty {
            FieldType::Bool => Ok(Value::Bool(self.take(1)?[0] != 0)),
            FieldType::UInt { bits } => {
                let w = usize::from(*bits) / 8;
                let b = self.take(w)?;
                let mut be = [0u8; 8];
                be[8 - w..].copy_from_slice(b);
                Ok(Value::U64(u64::from_be_bytes(be)))
            }
            FieldType::Int => {
                let b = self.take(8)?;
                Ok(Value::I64(i64::from_be_bytes(b.try_into().expect("8"))))
            }
            FieldType::Constrained { lo, .. } => {
                let b = self.take(8)?;
                let x = i64::from_be_bytes(b.try_into().expect("8"));
                if *lo >= 0 {
                    Ok(Value::U64(x as u64))
                } else {
                    Ok(Value::I64(x))
                }
            }
            FieldType::Enum { .. } => Ok(Value::U64(u64::from(self.get_u32()?))),
            FieldType::Bytes { .. } => {
                let len = self.get_u32()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            FieldType::Utf8 { .. } => {
                let len = self.get_u32()? as usize;
                let bytes = self.take(len)?;
                Ok(Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|_| err("invalid UTF-8"))?
                        .to_owned(),
                ))
            }
            FieldType::BitString { .. } => {
                let nbits = self.get_u32()? as usize;
                let packed = self.take(nbits.div_ceil(8))?;
                Ok(Value::Bits(
                    (0..nbits)
                        .map(|i| packed[i / 8] & (0x80 >> (i % 8)) != 0)
                        .collect(),
                ))
            }
            FieldType::Struct(schema) => self.decode_struct_body(schema),
            FieldType::List { elem, .. } => {
                let count = self.get_u32()? as usize;
                let mut items = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    items.push(self.decode(elem)?);
                }
                Ok(Value::List(items))
            }
            FieldType::Choice(_) => Err(err("LCM cannot express unions")),
            FieldType::Optional(inner) => {
                let present = self.take(1)?[0] != 0;
                if present {
                    Ok(Value::Optional(Some(Box::new(self.decode(inner)?))))
                } else {
                    Ok(Value::Optional(None))
                }
            }
        }
    }

    fn decode_struct_body(&mut self, schema: &StructSchema) -> Result<Value> {
        let mut fields = Vec::with_capacity(schema.fields.len());
        for def in &schema.fields {
            fields.push(self.decode(&def.ty)?);
        }
        Ok(Value::Struct(fields))
    }
}

impl WireFormat for LcmLike {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        out.extend_from_slice(&fingerprint(schema).to_be_bytes());
        encode_struct_body(schema, value, out)
    }

    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value> {
        let mut r = LcmReader { buf: bytes, pos: 0 };
        let fp = r.take(8)?;
        if fp != fingerprint(schema).to_be_bytes() {
            return Err(err("fingerprint mismatch"));
        }
        r.decode_struct_body(schema)
    }

    fn supports(&self, schema: &Schema) -> bool {
        !schema.contains_choice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Variant;

    #[test]
    fn round_trips_flat_message() {
        let schema = StructSchema::builder("Pose")
            .field("ts", FieldType::UInt { bits: 64 })
            .field("x", FieldType::Int)
            .field("name", FieldType::Utf8 { max: None })
            .build();
        let v = Value::Struct(vec![
            Value::U64(1234567),
            Value::I64(-42),
            Value::Str("sensor".into()),
        ]);
        let codec = LcmLike::new();
        let mut buf = Vec::new();
        codec.encode(&schema, &v, &mut buf).unwrap();
        assert_eq!(codec.decode(&schema, &buf).unwrap(), v);
    }

    #[test]
    fn fingerprint_detects_schema_mismatch() {
        let s1 = StructSchema::builder("A")
            .field("x", FieldType::UInt { bits: 32 })
            .build();
        let s2 = StructSchema::builder("B")
            .field("x", FieldType::UInt { bits: 32 })
            .build();
        let codec = LcmLike::new();
        let mut buf = Vec::new();
        codec
            .encode(&s1, &Value::Struct(vec![Value::U64(1)]), &mut buf)
            .unwrap();
        assert!(codec.decode(&s2, &buf).is_err());
        assert!(codec.decode(&s1, &buf).is_ok());
    }

    #[test]
    fn unions_are_unsupported() {
        let schema = StructSchema::builder("U")
            .field(
                "c",
                FieldType::Choice(vec![Variant {
                    name: "a".into(),
                    ty: FieldType::Bool,
                }]),
            )
            .build();
        let codec = LcmLike::new();
        assert!(!codec.supports(&schema));
        let mut buf = Vec::new();
        assert!(codec
            .encode(
                &schema,
                &Value::Struct(vec![Value::choice(0, Value::Bool(true))]),
                &mut buf
            )
            .is_err());
    }

    #[test]
    fn constrained_fields_cost_full_width() {
        // PER packs a 0..=15 range into 4 bits; LCM spends 8 bytes.
        let schema = StructSchema::builder("C")
            .field("x", FieldType::Constrained { lo: 0, hi: 15 })
            .build();
        let v = Value::Struct(vec![Value::U64(9)]);
        let codec = LcmLike::new();
        let mut lcm = Vec::new();
        codec.encode(&schema, &v, &mut lcm).unwrap();
        let mut per = Vec::new();
        crate::per::Asn1Per::new()
            .encode(&schema, &v, &mut per)
            .unwrap();
        assert_eq!(lcm.len(), 8 + 8);
        assert_eq!(per.len(), 1);
        assert_eq!(codec.decode(&schema, &lcm).unwrap(), v);
    }

    #[test]
    fn truncation_is_an_error() {
        let schema = StructSchema::builder("S")
            .field("x", FieldType::UInt { bits: 64 })
            .build();
        let codec = LcmLike::new();
        let mut buf = Vec::new();
        codec
            .encode(&schema, &Value::Struct(vec![Value::U64(5)]), &mut buf)
            .unwrap();
        for cut in 0..buf.len() {
            assert!(codec.decode(&schema, &buf[..cut]).is_err());
        }
    }
}
