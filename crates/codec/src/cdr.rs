//! A Fast-CDR-like plain binary format (Fig. 18 comparator).
//!
//! OMG CDR as implemented by eProsima Fast-CDR: little-endian scalars at
//! natural alignment, `u32` length-prefixed strings and sequences, `u32`
//! union discriminants, everything written and read strictly sequentially.
//! Encoding is nearly memcpy-speed; decoding *materializes an owned object*
//! (as `Cdr::deserialize` fills a C++ struct), which is why its read cost
//! grows with field count while fastbuf's does not — the crossover the
//! paper's Fig. 18 shows around 7 information elements.

use crate::value::{FieldType, Schema, StructSchema, Value};
use crate::WireFormat;
use neutrino_common::{Error, Result};

/// The CDR-like codec.
#[derive(Debug, Default, Clone, Copy)]
pub struct CdrLike;

const NAME: &str = "fast-cdr";

impl CdrLike {
    /// Creates the codec.
    pub fn new() -> Self {
        CdrLike
    }
}

fn err(detail: impl Into<String>) -> Error {
    Error::codec(NAME, detail.into())
}

/// Scalar width in bytes (CDR has no sub-byte packing; constrained ints use
/// the smallest natural width that fits the range, as an IDL author would
/// declare).
fn width(ty: &FieldType) -> Option<usize> {
    match ty {
        FieldType::Bool => Some(1),
        FieldType::UInt { bits } => Some(usize::from(*bits) / 8),
        FieldType::Int => Some(8),
        FieldType::Enum { .. } => Some(4),
        FieldType::Constrained { lo, hi } => {
            let range = (*hi as i128 - *lo as i128) as u128;
            Some(match range {
                0..=0xFF => 1,
                0x100..=0xFFFF => 2,
                0x1_0000..=0xFFFF_FFFF => 4,
                _ => 8,
            })
        }
        _ => None,
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn align(&mut self, to: usize) {
        while !self.buf.len().is_multiple_of(to) {
            self.buf.push(0);
        }
    }

    fn put_u32(&mut self, v: u32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_scalar(&mut self, ty: &FieldType, value: &Value, w: usize) -> Result<()> {
        let raw: u64 = match (ty, value) {
            (FieldType::Bool, Value::Bool(b)) => u64::from(*b),
            (FieldType::UInt { .. }, Value::U64(x)) => *x,
            (FieldType::Int, Value::I64(x)) => *x as u64,
            (FieldType::Enum { .. }, Value::U64(x)) => *x,
            (FieldType::Constrained { lo, .. }, v) => {
                let x = crate::value::integer_carrier(v)
                    .ok_or_else(|| err("constrained field is not an integer"))?;
                (x as i128 - *lo as i128) as u64
            }
            (ty, v) => return Err(err(format!("scalar mismatch: {ty:?} vs {v:?}"))),
        };
        self.align(w);
        self.buf.extend_from_slice(&raw.to_le_bytes()[..w]);
        Ok(())
    }

    fn encode(&mut self, ty: &FieldType, value: &Value) -> Result<()> {
        match (ty, value) {
            (FieldType::Bytes { .. }, Value::Bytes(bs)) => {
                self.put_u32(bs.len() as u32);
                self.buf.extend_from_slice(bs);
                Ok(())
            }
            (FieldType::Utf8 { .. }, Value::Str(s)) => {
                self.put_u32(s.len() as u32);
                self.buf.extend_from_slice(s.as_bytes());
                Ok(())
            }
            (FieldType::BitString { .. }, Value::Bits(bits)) => {
                self.put_u32(bits.len() as u32);
                let mut packed = vec![0u8; bits.len().div_ceil(8)];
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        packed[i / 8] |= 0x80 >> (i % 8);
                    }
                }
                self.buf.extend_from_slice(&packed);
                Ok(())
            }
            (FieldType::Struct(schema), v) => self.encode_struct(schema, v),
            (FieldType::List { elem, .. }, Value::List(items)) => {
                self.put_u32(items.len() as u32);
                for item in items {
                    self.encode(elem, item)?;
                }
                Ok(())
            }
            (FieldType::Choice(variants), Value::Choice { index, value }) => {
                if *index as usize >= variants.len() {
                    return Err(err(format!("choice index {index} out of range")));
                }
                self.put_u32(*index);
                self.encode(&variants[*index as usize].ty, value)
            }
            (FieldType::Optional(inner), Value::Optional(opt)) => {
                self.buf.push(u8::from(opt.is_some()));
                if let Some(v) = opt {
                    self.encode(inner, v)?;
                }
                Ok(())
            }
            (ty, v) => match width(ty) {
                Some(w) => self.put_scalar(ty, v, w),
                None => Err(err(format!("type mismatch: {ty:?} vs {v:?}"))),
            },
        }
    }

    fn encode_struct(&mut self, schema: &StructSchema, value: &Value) -> Result<()> {
        let fields = value
            .as_struct()
            .ok_or_else(|| err(format!("expected struct for {}", schema.name)))?;
        if fields.len() != schema.fields.len() {
            return Err(err(format!("struct {} arity mismatch", schema.name)));
        }
        for (def, val) in schema.fields.iter().zip(fields) {
            self.encode(&def.ty, val)?;
        }
        Ok(())
    }
}

struct CdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CdrReader<'a> {
    fn align(&mut self, to: usize) {
        self.pos = self.pos.div_ceil(to) * to;
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| err(format!("truncated at byte {}", self.pos)))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u32(&mut self) -> Result<u32> {
        self.align(4);
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_scalar(&mut self, ty: &FieldType, w: usize) -> Result<Value> {
        self.align(w);
        let b = self.take(w)?;
        let mut le = [0u8; 8];
        le[..w].copy_from_slice(b);
        let raw = u64::from_le_bytes(le);
        Ok(match ty {
            FieldType::Bool => Value::Bool(raw != 0),
            FieldType::UInt { .. } => Value::U64(raw),
            FieldType::Int => Value::I64(raw as i64),
            FieldType::Enum { .. } => Value::U64(raw),
            FieldType::Constrained { lo, .. } => {
                let v = *lo as i128 + raw as i128;
                if *lo >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v as i64)
                }
            }
            ty => return Err(err(format!("{ty:?} is not a scalar"))),
        })
    }

    fn decode(&mut self, ty: &FieldType) -> Result<Value> {
        match ty {
            FieldType::Bytes { .. } => {
                let len = self.get_u32()? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            FieldType::Utf8 { .. } => {
                let len = self.get_u32()? as usize;
                let bytes = self.take(len)?;
                Ok(Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|_| err("invalid UTF-8"))?
                        .to_owned(),
                ))
            }
            FieldType::BitString { .. } => {
                let nbits = self.get_u32()? as usize;
                let packed = self.take(nbits.div_ceil(8))?;
                Ok(Value::Bits(
                    (0..nbits)
                        .map(|i| packed[i / 8] & (0x80 >> (i % 8)) != 0)
                        .collect(),
                ))
            }
            FieldType::Struct(schema) => self.decode_struct(schema),
            FieldType::List { elem, .. } => {
                let count = self.get_u32()? as usize;
                let mut items = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    items.push(self.decode(elem)?);
                }
                Ok(Value::List(items))
            }
            FieldType::Choice(variants) => {
                let index = self.get_u32()?;
                let var = variants
                    .get(index as usize)
                    .ok_or_else(|| err(format!("choice index {index} out of range")))?;
                Ok(Value::Choice {
                    index,
                    value: Box::new(self.decode(&var.ty)?),
                })
            }
            FieldType::Optional(inner) => {
                let present = self.take(1)?[0] != 0;
                if present {
                    Ok(Value::Optional(Some(Box::new(self.decode(inner)?))))
                } else {
                    Ok(Value::Optional(None))
                }
            }
            ty => {
                let w = width(ty).ok_or_else(|| err(format!("unhandled type {ty:?}")))?;
                self.get_scalar(ty, w)
            }
        }
    }

    fn decode_struct(&mut self, schema: &StructSchema) -> Result<Value> {
        let mut fields = Vec::with_capacity(schema.fields.len());
        for def in &schema.fields {
            fields.push(self.decode(&def.ty)?);
        }
        Ok(Value::Struct(fields))
    }
}

impl WireFormat for CdrLike {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode(&self, schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let mut w = Writer {
            buf: std::mem::take(out),
        };
        w.encode_struct(schema, value)?;
        *out = w.buf;
        Ok(())
    }

    fn decode(&self, schema: &Schema, bytes: &[u8]) -> Result<Value> {
        let mut r = CdrReader { buf: bytes, pos: 0 };
        r.decode_struct(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Variant;
    use std::sync::Arc;

    fn round_trip(schema: &Schema, value: &Value) -> Vec<u8> {
        let codec = CdrLike::new();
        let mut buf = Vec::new();
        codec.encode(schema, value, &mut buf).unwrap();
        let back = codec.decode(schema, &buf).unwrap();
        assert_eq!(&back, value);
        buf
    }

    #[test]
    fn scalars_align_naturally() {
        let schema = StructSchema::builder("S")
            .field("a", FieldType::UInt { bits: 8 })
            .field("b", FieldType::UInt { bits: 32 })
            .build();
        let buf = round_trip(
            &schema,
            &Value::Struct(vec![Value::U64(7), Value::U64(0x1234_5678)]),
        );
        // 1 byte + 3 pad + 4 bytes.
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn full_message_round_trips() {
        let inner = Arc::new(
            StructSchema::builder("Inner")
                .field("x", FieldType::Constrained { lo: -5, hi: 300 })
                .build(),
        );
        let schema = StructSchema::builder("M")
            .field("flag", FieldType::Bool)
            .field("name", FieldType::Utf8 { max: None })
            .field("blob", FieldType::Bytes { max: Some(64) })
            .field("bits", FieldType::BitString { max_bits: None })
            .field(
                "list",
                FieldType::List {
                    elem: Box::new(FieldType::Struct(inner.clone())),
                    max: None,
                },
            )
            .field(
                "opt",
                FieldType::Optional(Box::new(FieldType::UInt { bits: 16 })),
            )
            .field(
                "ch",
                FieldType::Choice(vec![
                    Variant {
                        name: "a".into(),
                        ty: FieldType::UInt { bits: 64 },
                    },
                    Variant {
                        name: "b".into(),
                        ty: FieldType::Struct(inner),
                    },
                ]),
            )
            .build();
        let v = Value::Struct(vec![
            Value::Bool(true),
            Value::Str("edge-node".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::Bits(vec![true, true, false, true]),
            Value::List(vec![
                Value::Struct(vec![Value::I64(-5)]),
                Value::Struct(vec![Value::I64(300)]),
            ]),
            Value::some(Value::U64(99)),
            Value::choice(0, Value::U64(1 << 40)),
        ]);
        round_trip(&schema, &v);
    }

    #[test]
    fn truncation_is_an_error() {
        let schema = StructSchema::builder("S")
            .field("s", FieldType::Utf8 { max: None })
            .build();
        let codec = CdrLike::new();
        let mut buf = Vec::new();
        codec
            .encode(
                &schema,
                &Value::Struct(vec![Value::Str("hello world".into())]),
                &mut buf,
            )
            .unwrap();
        for cut in 0..buf.len() {
            assert!(codec.decode(&schema, &buf[..cut]).is_err());
        }
    }

    #[test]
    fn cdr_smaller_than_fastbuf_for_flat_messages() {
        let schema = StructSchema::builder("S")
            .field("a", FieldType::UInt { bits: 32 })
            .field("b", FieldType::UInt { bits: 32 })
            .build();
        let v = Value::Struct(vec![Value::U64(1), Value::U64(2)]);
        let mut cdr = Vec::new();
        let mut fb = Vec::new();
        CdrLike::new().encode(&schema, &v, &mut cdr).unwrap();
        crate::fastbuf::Fastbuf::standard()
            .encode(&schema, &v, &mut fb)
            .unwrap();
        assert!(cdr.len() < fb.len());
    }
}
