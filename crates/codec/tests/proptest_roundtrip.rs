//! Property-based codec tests: for random schemas and conforming values,
//! every codec must (a) round-trip losslessly, (b) agree between its
//! `traverse` checksum and a full decode, and (c) reject truncated input
//! without panicking.
//!
//! The generated schema language is the subset the message model uses
//! (which is also what fastbuf supports): union variants are single fields
//! or structs; list elements are scalars, blobs, strings or structs;
//! optionals do not nest.

use neutrino_codec::value::{FieldType, Schema, StructSchema, Value, Variant};
use neutrino_codec::{checksum_value, CodecKind};
use proptest::prelude::*;
use std::sync::Arc;

/// A generated field: its type plus a strategy-ready concrete value.
#[derive(Debug, Clone)]
struct GenField {
    ty: FieldType,
    value: Value,
}

fn scalar_field() -> BoxedStrategy<GenField> {
    prop_oneof![
        any::<bool>().prop_map(|b| GenField {
            ty: FieldType::Bool,
            value: Value::Bool(b),
        }),
        (
            prop_oneof![Just(8u8), Just(16), Just(32), Just(64)],
            any::<u64>()
        )
            .prop_map(|(bits, raw)| {
                let max = if bits == 64 {
                    i64::MAX as u64
                } else {
                    (1u64 << bits) - 1
                };
                GenField {
                    ty: FieldType::UInt { bits },
                    value: Value::U64(raw % (max + 1)),
                }
            }),
        any::<i64>().prop_map(|x| GenField {
            ty: FieldType::Int,
            value: Value::I64(x),
        }),
        // Non-negative constrained range: carried as U64.
        (0i64..1000, 0i64..100_000, any::<u64>()).prop_map(|(lo, span, raw)| {
            let hi = lo + span;
            let x = lo + (raw % (span as u64 + 1)) as i64;
            GenField {
                ty: FieldType::Constrained { lo, hi },
                value: Value::U64(x as u64),
            }
        }),
        // Negative-spanning constrained range: carried as I64.
        (-1000i64..0, 0i64..5000, any::<u64>()).prop_map(|(lo, span, raw)| {
            let hi = lo + span;
            let x = lo + (raw % (span as u64 + 1)) as i64;
            GenField {
                ty: FieldType::Constrained { lo, hi },
                value: Value::I64(x),
            }
        }),
        (1u32..200, any::<u64>()).prop_map(|(variants, raw)| GenField {
            ty: FieldType::Enum { variants },
            value: Value::U64(raw % u64::from(variants)),
        }),
    ]
    .boxed()
}

fn blob_field() -> BoxedStrategy<GenField> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(|bs| GenField {
            ty: FieldType::Bytes { max: None },
            value: Value::Bytes(bs),
        }),
        (proptest::collection::vec(any::<u8>(), 0..40), 40u32..64).prop_map(|(bs, max)| {
            GenField {
                ty: FieldType::Bytes { max: Some(max) },
                value: Value::Bytes(bs),
            }
        }),
        "[a-zA-Z0-9 /._-]{0,48}".prop_map(|s| GenField {
            ty: FieldType::Utf8 { max: None },
            value: Value::Str(s),
        }),
        proptest::collection::vec(any::<bool>(), 0..64).prop_map(|bits| GenField {
            ty: FieldType::BitString { max_bits: Some(64) },
            value: Value::Bits(bits),
        }),
    ]
    .boxed()
}

fn leaf_field() -> BoxedStrategy<GenField> {
    prop_oneof![scalar_field(), blob_field()].boxed()
}

fn struct_field(depth: u32) -> BoxedStrategy<GenField> {
    proptest::collection::vec(field(depth), 1..5)
        .prop_map(|fields| {
            let schema = Arc::new(StructSchema {
                name: "Gen".into(),
                fields: fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| neutrino_codec::value::FieldDef {
                        name: format!("f{i}"),
                        ty: f.ty.clone(),
                    })
                    .collect(),
            });
            GenField {
                ty: FieldType::Struct(schema),
                value: Value::Struct(fields.into_iter().map(|f| f.value).collect()),
            }
        })
        .boxed()
}

fn field(depth: u32) -> BoxedStrategy<GenField> {
    if depth == 0 {
        return leaf_field();
    }
    prop_oneof![
        4 => leaf_field(),
        1 => struct_field(depth - 1),
        // Lists of scalars or structs.
        1 => (proptest::collection::vec(scalar_field(), 0..1), 0usize..6).prop_flat_map(
            move |(elem_proto, len)| {
                let proto = elem_proto.into_iter().next();
                match proto {
                    None => Just(GenField {
                        ty: FieldType::List {
                            elem: Box::new(FieldType::Bool),
                            max: Some(16),
                        },
                        value: Value::List(vec![]),
                    })
                    .boxed(),
                    Some(proto) => {
                        let ty = proto.ty.clone();
                        proptest::collection::vec(value_for(ty.clone()), len..=len)
                            .prop_map(move |items| GenField {
                                ty: FieldType::List {
                                    elem: Box::new(ty.clone()),
                                    max: Some(16),
                                },
                                value: Value::List(items),
                            })
                            .boxed()
                    }
                }
            }
        ),
        // Optionals around leaves.
        1 => (leaf_field(), any::<bool>()).prop_map(|(inner, present)| GenField {
            ty: FieldType::Optional(Box::new(inner.ty)),
            value: if present {
                Value::some(inner.value)
            } else {
                Value::none()
            },
        }),
        // Unions of single fields (the svtable shape) and structs.
        1 => (proptest::collection::vec(leaf_field(), 1..4), any::<proptest::sample::Index>())
            .prop_map(|(variants, pick)| {
                let idx = pick.index(variants.len());
                let ty = FieldType::Choice(
                    variants
                        .iter()
                        .enumerate()
                        .map(|(i, v)| Variant {
                            name: format!("v{i}"),
                            ty: v.ty.clone(),
                        })
                        .collect(),
                );
                GenField {
                    ty,
                    value: Value::choice(idx as u32, variants[idx].value.clone()),
                }
            }),
    ]
    .boxed()
}

/// A strategy producing another value of the same type (for list elements).
fn value_for(ty: FieldType) -> BoxedStrategy<Value> {
    match ty {
        FieldType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        FieldType::UInt { bits } => any::<u64>()
            .prop_map(move |raw| {
                let max = if bits == 64 {
                    i64::MAX as u64
                } else {
                    (1u64 << bits) - 1
                };
                Value::U64(raw % (max + 1))
            })
            .boxed(),
        FieldType::Int => any::<i64>().prop_map(Value::I64).boxed(),
        FieldType::Constrained { lo, hi } => any::<u64>()
            .prop_map(move |raw| {
                let span = (hi - lo) as u64;
                let x = lo + (raw % (span + 1)) as i64;
                if lo >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                }
            })
            .boxed(),
        FieldType::Enum { variants } => any::<u64>()
            .prop_map(move |raw| Value::U64(raw % u64::from(variants)))
            .boxed(),
        other => panic!("value_for only handles scalars, got {other:?}"),
    }
}

fn root() -> BoxedStrategy<(Schema, Value)> {
    proptest::collection::vec(field(2), 1..8)
        .prop_map(|fields| {
            let schema = StructSchema {
                name: "Root".into(),
                fields: fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| neutrino_codec::value::FieldDef {
                        name: format!("f{i}"),
                        ty: f.ty.clone(),
                    })
                    .collect(),
            };
            let value = Value::Struct(fields.into_iter().map(|f| f.value).collect());
            (schema, value)
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_values_validate((schema, value) in root()) {
        schema.validate(&value).unwrap();
    }

    #[test]
    fn all_codecs_round_trip((schema, value) in root()) {
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            codec.encode(&schema, &value, &mut buf).unwrap();
            let back = codec.decode(&schema, &buf).unwrap();
            prop_assert_eq!(&back, &value, "codec {}", kind.name());
        }
    }

    #[test]
    fn traverse_agrees_with_decode((schema, value) in root()) {
        let expected = checksum_value(&value);
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            codec.encode(&schema, &value, &mut buf).unwrap();
            prop_assert_eq!(
                codec.traverse(&schema, &buf).unwrap(),
                expected,
                "codec {}",
                kind.name()
            );
        }
    }

    #[test]
    fn encoding_is_deterministic((schema, value) in root()) {
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut a = Vec::new();
            let mut b = Vec::new();
            codec.encode(&schema, &value, &mut a).unwrap();
            codec.encode(&schema, &value, &mut b).unwrap();
            prop_assert_eq!(&a, &b, "codec {}", kind.name());
        }
    }

    #[test]
    fn per_is_never_larger_than_fastbuf((schema, value) in root()) {
        let mut per = Vec::new();
        let mut fb = Vec::new();
        CodecKind::Asn1Per.instance().encode(&schema, &value, &mut per).unwrap();
        CodecKind::Fastbuf.instance().encode(&schema, &value, &mut fb).unwrap();
        prop_assert!(per.len() <= fb.len(), "PER {} vs fastbuf {}", per.len(), fb.len());
    }

    #[test]
    fn truncation_never_panics((schema, value) in root(), cut_frac in 0.0f64..1.0) {
        for kind in CodecKind::ALL {
            let codec = kind.instance();
            if !codec.supports(&schema) {
                continue;
            }
            let mut buf = Vec::new();
            codec.encode(&schema, &value, &mut buf).unwrap();
            let cut = ((buf.len() as f64) * cut_frac) as usize;
            let _ = codec.decode(&schema, &buf[..cut]);
            let _ = codec.traverse(&schema, &buf[..cut]);
        }
    }

    #[test]
    fn bit_flips_never_panic((schema, value) in root(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        for kind in [CodecKind::Asn1Per, CodecKind::FastbufOptimized, CodecKind::Proto] {
            let codec = kind.instance();
            let mut buf = Vec::new();
            codec.encode(&schema, &value, &mut buf).unwrap();
            if buf.is_empty() {
                continue;
            }
            let pos = ((buf.len() as f64) * pos_frac) as usize % buf.len();
            buf[pos] ^= 1 << bit;
            let _ = codec.decode(&schema, &buf);
            let _ = codec.traverse(&schema, &buf);
        }
    }
}
