//! Control-traffic generation (§5, §6.1).
//!
//! The paper replays real signaling traces from a commercial ng4T generator
//! and synthesizes two traffic patterns: "(i) 10 Gbps bursty traffic to
//! emulate a large number of IoT devices sending requests in a synchronized
//! pattern, and (ii) uniform traffic to emulate a pre-specified number of
//! control procedure requests per second." The traces themselves are
//! proprietary, so this crate provides:
//!
//! * [`patterns`] — the uniform and bursty arrival processes, parameterized
//!   exactly like the figures' x-axes (procedures/second, active users);
//! * [`traces`] — a synthetic ng4T-like trace format (serde-serializable)
//!   plus a generator reproducing the published per-device statistics
//!   (a session request every ≈106.9 s per device \[37\], 4–5 % of requests
//!   experiencing failures, heavy-tailed think times);
//! * [`mobility`] — the drive model of Fig. 12 (base stations 700–1000 m
//!   apart, 60 mph) emitting handover arrivals for probe UEs.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod mobility;
pub mod patterns;
pub mod traces;

pub use mobility::{DriveModel, DriveParams};
pub use patterns::{
    bursty_attach, flash_crowd_reattach, iot_burst_storm, uniform, uniform_with_pool, BurstParams,
    FlashCrowdParams, FlashCrowdSchedule, IotStormParams, UniformParams,
};
pub use traces::{Trace, TraceGenerator, TraceParams, TraceRecord};
