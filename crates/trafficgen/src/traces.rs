//! A synthetic ng4T-like signaling trace.
//!
//! The paper replays commercial traces from ng4T \[45\] that we cannot
//! redistribute; this module generates traces with the *published*
//! statistics of real cellular control traffic instead:
//!
//! * a device issues a session (service) request on average every 106.9 s
//!   \[37\], with exponential inter-arrivals;
//! * device activity is heavily skewed (a few chatty devices dominate) —
//!   modeled with a Zipf(0.9) popularity distribution;
//! * periodic tracking-area updates and occasional detach/attach cycles;
//! * the trace is serializable (JSON lines) so runs can be archived and
//!   replayed bit-for-bit.

use neutrino_common::rng::{exponential, substream, Zipf};
use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::uepop::Arrival;
use neutrino_core::Workload;
use neutrino_messages::procedures::ProcedureKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Microseconds since trace start.
    pub at_us: u64,
    /// Device id.
    pub ue: u64,
    /// Procedure name (stable across versions).
    pub procedure: TraceProcedure,
}

/// Procedures a trace may contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceProcedure {
    /// Initial attach.
    Attach,
    /// Service request.
    ServiceRequest,
    /// Tracking-area update.
    Tau,
    /// Handover (inter-region).
    Handover,
    /// Detach.
    Detach,
}

impl TraceProcedure {
    /// Maps to the executed procedure kind.
    pub fn kind(self) -> ProcedureKind {
        match self {
            TraceProcedure::Attach => ProcedureKind::InitialAttach,
            TraceProcedure::ServiceRequest => ProcedureKind::ServiceRequest,
            TraceProcedure::Tau => ProcedureKind::TrackingAreaUpdate,
            TraceProcedure::Handover => ProcedureKind::HandoverWithCpfChange,
            TraceProcedure::Detach => ProcedureKind::Detach,
        }
    }
}

/// A complete trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Time-ordered records.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Serializes as JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("serializable"));
            out.push('\n');
        }
        out
    }

    /// Parses JSON lines.
    pub fn from_jsonl(s: &str) -> Result<Trace, serde_json::Error> {
        let mut records = Vec::new();
        for line in s.lines() {
            if line.trim().is_empty() {
                continue;
            }
            records.push(serde_json::from_str(line)?);
        }
        Ok(Trace { records })
    }

    /// Converts into a simulator workload.
    pub fn workload(&self) -> Workload {
        let arrivals: Vec<Arrival> = self
            .records
            .iter()
            .map(|r| Arrival {
                at: Instant::from_micros(r.at_us),
                ue: UeId::new(r.ue),
                kind: r.procedure.kind(),
            })
            .collect();
        Workload::from_vec(arrivals)
    }

    /// Mean service-request inter-arrival per device, in seconds (for
    /// validating against the published 106.9 s statistic).
    pub fn mean_sr_interarrival_secs(&self) -> f64 {
        use std::collections::BTreeMap;
        let mut per_ue: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for r in &self.records {
            if r.procedure == TraceProcedure::ServiceRequest {
                per_ue.entry(r.ue).or_default().push(r.at_us);
            }
        }
        let mut gaps = Vec::new();
        for times in per_ue.values() {
            for w in times.windows(2) {
                gaps.push((w[1] - w[0]) as f64 / 1e6);
            }
        }
        if gaps.is_empty() {
            return f64::NAN;
        }
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Number of devices.
    pub devices: u64,
    /// Trace duration.
    pub duration: Duration,
    /// Mean service-request interval per device; \[37\] reports 106.9 s.
    pub mean_sr_interval: Duration,
    /// Zipf skew of device activity (0 = uniform).
    pub activity_skew: f64,
    /// Fraction of service requests replaced by TAUs (mobility signaling).
    pub tau_fraction: f64,
    /// Fraction replaced by handovers.
    pub handover_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            devices: 1_000,
            duration: Duration::from_secs(600),
            mean_sr_interval: Duration::from_secs_f64(106.9),
            activity_skew: 0.9,
            tau_fraction: 0.10,
            handover_fraction: 0.05,
            seed: 1,
        }
    }
}

/// The trace generator.
#[derive(Debug, Clone, Copy)]
pub struct TraceGenerator {
    params: TraceParams,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(params: TraceParams) -> Self {
        TraceGenerator { params }
    }

    /// Generates the trace: every device attaches at a random offset, then
    /// issues exponential-interval requests whose kind mixes service
    /// requests, TAUs, and handovers; a small fraction detach and re-attach.
    pub fn generate(&self) -> Trace {
        let p = self.params;
        let mut rng = substream(p.seed, "trace");
        let zipf = Zipf::new(p.devices as usize, p.activity_skew);
        // Per-device mean rate, modulated by popularity so the *population*
        // mean matches `mean_sr_interval`.
        let base_rate = 1.0 / p.mean_sr_interval.as_secs_f64();
        let horizon = p.duration.as_secs_f64();
        let mut records = Vec::new();
        // Skewed per-device weights, normalized to mean 1 over the sampled
        // population.
        let mut weights = vec![0.0f64; p.devices as usize];
        let samples = (p.devices * 4).max(10_000);
        for _ in 0..samples {
            weights[zipf.sample(&mut rng)] += 1.0;
        }
        let mean_w = samples as f64 / p.devices as f64;
        for ue in 0..p.devices {
            let w = (weights[ue as usize] / mean_w).max(0.05);
            let rate = base_rate * w;
            // Attach somewhere in the first 10% of the trace.
            let mut t = rng.gen_range(0.0..horizon * 0.1);
            records.push(TraceRecord {
                at_us: (t * 1e6) as u64,
                ue,
                procedure: TraceProcedure::Attach,
            });
            loop {
                t += exponential(&mut rng, rate);
                if t >= horizon {
                    break;
                }
                let roll: f64 = rng.gen_range(0.0f64..1.0);
                let procedure = if roll < p.handover_fraction {
                    TraceProcedure::Handover
                } else if roll < p.handover_fraction + p.tau_fraction {
                    TraceProcedure::Tau
                } else if roll > 0.995 {
                    TraceProcedure::Detach
                } else {
                    TraceProcedure::ServiceRequest
                };
                records.push(TraceRecord {
                    at_us: (t * 1e6) as u64,
                    ue,
                    procedure,
                });
                if procedure == TraceProcedure::Detach {
                    // Re-attach after a think time before more traffic.
                    t += exponential(&mut rng, rate);
                    if t >= horizon {
                        break;
                    }
                    records.push(TraceRecord {
                        at_us: (t * 1e6) as u64,
                        ue,
                        procedure: TraceProcedure::Attach,
                    });
                }
            }
        }
        records.sort_by_key(|r| r.at_us);
        Trace { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        TraceGenerator::new(TraceParams {
            devices: 200,
            duration: Duration::from_secs(3_000),
            seed: 7,
            ..TraceParams::default()
        })
        .generate()
    }

    #[test]
    fn trace_is_time_ordered_and_attaches_first() {
        let t = small_trace();
        assert!(t.records.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        // Per device, the first record is an attach.
        let mut first = std::collections::HashMap::new();
        for r in &t.records {
            first.entry(r.ue).or_insert(r.procedure);
        }
        assert!(first.values().all(|p| *p == TraceProcedure::Attach));
        assert_eq!(first.len(), 200);
    }

    #[test]
    fn mean_sr_interval_matches_published_statistic() {
        let t = small_trace();
        let mean = t.mean_sr_interarrival_secs();
        // Zipf weighting biases the *sample* of gaps toward chatty devices;
        // accept a broad band around 106.9 s.
        assert!(
            (30.0..200.0).contains(&mean),
            "mean SR inter-arrival {mean}s is out of band"
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let t = small_trace();
        let s = t.to_jsonl();
        let back = Trace::from_jsonl(&s).unwrap();
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn workload_conversion_preserves_order_and_kinds() {
        let t = small_trace();
        let n = t.records.len();
        let v: Vec<_> = t.workload().into_arrivals().collect();
        assert_eq!(v.len(), n);
        assert!(v.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(v
            .iter()
            .any(|a| a.kind == ProcedureKind::HandoverWithCpfChange));
        assert!(v
            .iter()
            .any(|a| a.kind == ProcedureKind::TrackingAreaUpdate));
    }

    #[test]
    fn activity_is_skewed() {
        let t = small_trace();
        let mut counts = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.ue).or_insert(0usize) += 1;
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top = v[..20].iter().sum::<usize>() as f64;
        let total = v.iter().sum::<usize>() as f64;
        assert!(
            top / total > 0.2,
            "top-10% devices should dominate: {:.2}",
            top / total
        );
    }
}
