//! The Fig. 12 drive model: a vehicle passing base stations 700–1000 m
//! apart at highway speed, handing over at each cell edge.

use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::uepop::Arrival;
use neutrino_core::Workload;
use neutrino_messages::procedures::ProcedureKind;

/// Drive parameters (§6.6 / Fig. 12).
#[derive(Debug, Clone, Copy)]
pub struct DriveParams {
    /// Vehicle speed in meters/second (60 mph ≈ 26.82 m/s).
    pub speed_mps: f64,
    /// Base-station spacing pattern in meters (Fig. 12 alternates 700 m and
    /// 1000 m).
    pub bs_spacing_m: [f64; 2],
    /// Drive duration (the paper uses a 5-minute drive).
    pub duration: Duration,
    /// When the drive starts.
    pub start: Instant,
}

impl Default for DriveParams {
    fn default() -> Self {
        DriveParams {
            speed_mps: 26.82, // 60 mph
            bs_spacing_m: [700.0, 1000.0],
            duration: Duration::from_secs(300),
            start: Instant::ZERO,
        }
    }
}

/// The drive model: computes handover instants for a probe UE.
#[derive(Debug, Clone, Copy)]
pub struct DriveModel {
    params: DriveParams,
}

impl DriveModel {
    /// Creates the model.
    pub fn new(params: DriveParams) -> Self {
        DriveModel { params }
    }

    /// The instants at which the vehicle crosses cell edges.
    pub fn handover_times(&self) -> Vec<Instant> {
        let p = self.params;
        let mut out = Vec::new();
        let mut pos = 0.0f64;
        let mut i = 0usize;
        let total = p.speed_mps * p.duration.as_secs_f64();
        loop {
            pos += p.bs_spacing_m[i % 2];
            i += 1;
            if pos >= total {
                break;
            }
            out.push(p.start + Duration::from_secs_f64(pos / p.speed_mps));
        }
        out
    }

    /// Number of handovers during the drive.
    pub fn handover_count(&self) -> usize {
        self.handover_times().len()
    }

    /// Builds the probe UE's workload: attach at drive start, then one
    /// inter-region handover per cell edge. The `single_handover` variant
    /// of Fig. 13/14 keeps only the first.
    pub fn workload(&self, ue: UeId, single_handover: bool) -> Workload {
        let mut v = vec![Arrival {
            at: self.params.start,
            ue,
            kind: ProcedureKind::InitialAttach,
        }];
        for (i, t) in self.handover_times().into_iter().enumerate() {
            if single_handover && i > 0 {
                break;
            }
            v.push(Arrival {
                at: t,
                ue,
                kind: ProcedureKind::HandoverWithCpfChange,
            });
        }
        Workload::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_minute_drive_at_60mph_crosses_many_cells() {
        let m = DriveModel::new(DriveParams::default());
        // 26.82 m/s * 300 s = 8046 m over 850 m average spacing ≈ 9 cells.
        let n = m.handover_count();
        assert!((7..=10).contains(&n), "got {n} handovers");
    }

    #[test]
    fn handover_times_are_increasing_and_within_the_drive() {
        let m = DriveModel::new(DriveParams::default());
        let times = m.handover_times();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|t| *t <= Instant::from_secs(300)));
        // First edge at 700 m: 700 / 26.82 ≈ 26.1 s.
        let first = times[0].as_secs_f64();
        assert!((26.0..26.3).contains(&first), "first HO at {first}s");
    }

    #[test]
    fn single_handover_workload_has_one_ho() {
        let m = DriveModel::new(DriveParams::default());
        let v: Vec<_> = m.workload(UeId::new(9), true).into_arrivals().collect();
        let hos = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::HandoverWithCpfChange)
            .count();
        assert_eq!(hos, 1);
        assert_eq!(v[0].kind, ProcedureKind::InitialAttach);
    }

    #[test]
    fn multiple_handover_workload_has_all() {
        let m = DriveModel::new(DriveParams::default());
        let v: Vec<_> = m.workload(UeId::new(9), false).into_arrivals().collect();
        let hos = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::HandoverWithCpfChange)
            .count();
        assert_eq!(hos, m.handover_count());
    }
}
