//! The two synthetic traffic patterns of §6.1.

use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::uepop::Arrival;
use neutrino_core::Workload;
use neutrino_messages::procedures::ProcedureKind;

/// Parameters of the uniform pattern: "a pre-specified number of control
/// procedure requests per second" (the PPS x-axes of Figs. 7, 8, 10, 11,
/// 15, 16).
#[derive(Debug, Clone, Copy)]
pub struct UniformParams {
    /// Procedures per second.
    pub rate_pps: u64,
    /// Measurement duration.
    pub duration: Duration,
    /// Procedure kind under test.
    pub kind: ProcedureKind,
    /// UE pool size (each arrival cycles through the pool).
    pub ues: u64,
    /// First UE id (so pools can be disjoint across phases).
    pub first_ue: u64,
    /// When the first arrival fires.
    pub start: Instant,
}

impl UniformParams {
    /// A pool sized so that each UE is busy a small fraction of the time
    /// even near saturation.
    pub fn pool_for_rate(rate_pps: u64) -> u64 {
        (rate_pps / 8).clamp(2_000, 200_000)
    }
}

/// Uniform arrivals: exact `rate_pps` spacing, cycling through the pool.
pub fn uniform(p: UniformParams) -> Workload {
    let spacing_ns = 1_000_000_000u64 / p.rate_pps.max(1);
    let total = (p.duration.as_nanos() / spacing_ns.max(1)).max(1);
    let kind = p.kind;
    let (ues, first_ue, start) = (p.ues.max(1), p.first_ue, p.start);
    Workload::new((0..total).map(move |i| Arrival {
        at: start + Duration::from_nanos(i * spacing_ns),
        ue: UeId::new(first_ue + (i % ues)),
        kind,
    }))
}

/// Uniform arrivals preceded by an attach phase that registers the whole
/// pool (so non-attach procedures find attached UEs). The attach phase runs
/// at `attach_rate_pps`, then the measured phase starts.
pub fn uniform_with_pool(p: UniformParams, attach_rate_pps: u64) -> (Workload, Instant) {
    let attach_spacing = 1_000_000_000u64 / attach_rate_pps.max(1);
    let attach_end =
        p.start + Duration::from_nanos(p.ues * attach_spacing) + Duration::from_millis(200);
    let attach = (0..p.ues).map(move |i| Arrival {
        at: p.start + Duration::from_nanos(i * attach_spacing),
        ue: UeId::new(p.first_ue + i),
        kind: ProcedureKind::InitialAttach,
    });
    let measured = uniform(UniformParams {
        start: attach_end,
        ..p
    });
    (
        Workload::new(attach.chain(measured.into_arrivals())),
        attach_end,
    )
}

/// Parameters of the bursty IoT pattern (Figs. 9, 17): N devices issuing
/// requests in a synchronized window.
#[derive(Debug, Clone, Copy)]
pub struct BurstParams {
    /// Number of active devices.
    pub active_users: u64,
    /// The window all requests land in (the paper's 10 Gbps arrival process
    /// drains a burst in well under a second).
    pub window: Duration,
    /// Procedure each device runs.
    pub kind: ProcedureKind,
    /// First UE id.
    pub first_ue: u64,
    /// Burst start.
    pub start: Instant,
}

/// A synchronized burst: device `i` fires at `start + i·window/N` — the
/// pathological IoT wake-up the paper stresses.
pub fn bursty_attach(p: BurstParams) -> Workload {
    let n = p.active_users.max(1);
    let step_ns = p.window.as_nanos() / n;
    let (kind, first_ue, start) = (p.kind, p.first_ue, p.start);
    Workload::new((0..n).map(move |i| Arrival {
        at: start + Duration::from_nanos(i * step_ns),
        ue: UeId::new(first_ue + i),
        kind,
    }))
}

/// Parameters of the flash-crowd re-attach storm: a regional blackout
/// (injected by the caller via `Cluster::fail_cpf_at` at the end of the
/// steady phase — see [`FlashCrowdSchedule::blackout_at`]) followed by the
/// whole population re-attaching in a synchronized herd at many times the
/// steady rate.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdParams {
    /// Population size.
    pub ues: u64,
    /// First UE id.
    pub first_ue: u64,
    /// Steady background service-request rate before and after the storm.
    pub steady_pps: u64,
    /// Initial pool-attach rate; `0` picks a fast default. Callers running
    /// under an admission gate should pace this below the gate's rate so
    /// the pre-storm phase registers cleanly.
    pub attach_pps: u64,
    /// Steady-phase length; the regional blackout hits when it ends (the
    /// caller injects the matching node failures at that instant).
    pub steady: Duration,
    /// Outage-detection lag before the herd starts re-attaching.
    pub surge_delay: Duration,
    /// The herd's aggregate re-attach rate (the "100×" of the scenario).
    pub surge_rate_pps: u64,
    /// Steady traffic duration after the surge drains.
    pub tail: Duration,
    /// Workload start.
    pub start: Instant,
}

/// Key instants of a generated flash crowd, for scenario assertions.
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdSchedule {
    /// End of the initial attach phase / start of steady traffic.
    pub steady_start: Instant,
    /// The regional blackout instant (end of the steady phase); the caller
    /// injects the matching node failures here.
    pub blackout_at: Instant,
    /// First re-attach of the herd.
    pub surge_start: Instant,
    /// Last re-attach of the herd.
    pub surge_end: Instant,
    /// Last arrival of the workload.
    pub end: Instant,
}

/// The flash-crowd re-attach storm: attach the pool, run steady
/// service-request traffic up to the blackout, then re-attach the entire
/// population at `surge_rate_pps`, then resume steady traffic for `tail`.
pub fn flash_crowd_reattach(p: FlashCrowdParams) -> (Workload, FlashCrowdSchedule) {
    let n = p.ues.max(1);
    let steady_pps = p.steady_pps.max(1);
    // Attach the pool before the steady phase; fast by default, paced by
    // the caller when an admission gate fronts the CTA.
    let attach_pps = if p.attach_pps > 0 {
        p.attach_pps
    } else {
        (steady_pps * 10).max(10_000)
    };
    let attach_spacing = 1_000_000_000u64 / attach_pps;
    let steady_start =
        p.start + Duration::from_nanos(n * attach_spacing) + Duration::from_millis(200);
    let attach = (0..n).map(move |i| Arrival {
        at: p.start + Duration::from_nanos(i * attach_spacing),
        ue: UeId::new(p.first_ue + i),
        kind: ProcedureKind::InitialAttach,
    });
    // Steady service requests until the blackout.
    let blackout_at = steady_start + p.steady;
    let pre = uniform(UniformParams {
        rate_pps: steady_pps,
        duration: p.steady,
        kind: ProcedureKind::ServiceRequest,
        ues: n,
        first_ue: p.first_ue,
        start: steady_start,
    });
    // The herd: every UE re-attaches, synchronized, at the surge rate.
    let surge_start = blackout_at + p.surge_delay;
    let surge_spacing = 1_000_000_000u64 / p.surge_rate_pps.max(1);
    let surge_end = surge_start + Duration::from_nanos((n - 1) * surge_spacing);
    let surge = (0..n).map(move |i| Arrival {
        at: surge_start + Duration::from_nanos(i * surge_spacing),
        ue: UeId::new(p.first_ue + i),
        kind: ProcedureKind::InitialAttach,
    });
    // Steady traffic resumes once the surge has drained.
    let tail_start = surge_end + Duration::from_millis(500);
    let post = uniform(UniformParams {
        rate_pps: steady_pps,
        duration: p.tail,
        kind: ProcedureKind::ServiceRequest,
        ues: n,
        first_ue: p.first_ue,
        start: tail_start,
    });
    let end = tail_start + p.tail;
    (
        Workload::new(
            attach
                .chain(pre.into_arrivals())
                .chain(surge)
                .chain(post.into_arrivals()),
        ),
        FlashCrowdSchedule {
            steady_start,
            blackout_at,
            surge_start,
            surge_end,
            end,
        },
    )
}

/// Parameters of the IoT burst storm: a fleet of devices waking in
/// synchronized pulses (the diurnal reporting pattern, compressed to
/// simulation scale).
#[derive(Debug, Clone, Copy)]
pub struct IotStormParams {
    /// Fleet size.
    pub devices: u64,
    /// First UE id.
    pub first_ue: u64,
    /// Number of synchronized pulses after the initial attach pulse.
    pub pulses: u64,
    /// Pulse period (the compressed "diurnal" cycle).
    pub period: Duration,
    /// The tight window each pulse packs the whole fleet into.
    pub window: Duration,
    /// Procedure each device runs per pulse (tracking-area updates or
    /// service requests; the first pulse is always the fleet attaching).
    pub kind: ProcedureKind,
    /// First pulse start.
    pub start: Instant,
}

/// The IoT burst storm: pulse 0 attaches the whole fleet inside `window`;
/// each subsequent pulse packs the fleet's `kind` procedures into the same
/// window, `period` apart — synchronized wake-ups with idle gaps between.
pub fn iot_burst_storm(p: IotStormParams) -> Workload {
    let n = p.devices.max(1);
    let step_ns = p.window.as_nanos() / n;
    let pulses = p.pulses.max(1);
    Workload::new((0..=pulses).flat_map(move |pulse| {
        let pulse_start = p.start + Duration::from_nanos(pulse * p.period.as_nanos());
        let kind = if pulse == 0 {
            ProcedureKind::InitialAttach
        } else {
            p.kind
        };
        (0..n).map(move |i| Arrival {
            at: pulse_start + Duration::from_nanos(i * step_ns),
            ue: UeId::new(p.first_ue + i),
            kind,
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_hits_the_requested_rate() {
        let w = uniform(UniformParams {
            rate_pps: 10_000,
            duration: Duration::from_secs(2),
            kind: ProcedureKind::ServiceRequest,
            ues: 100,
            first_ue: 0,
            start: Instant::ZERO,
        });
        let v: Vec<_> = w.into_arrivals().collect();
        assert_eq!(v.len(), 20_000);
        let last = v.last().unwrap().at;
        assert!(last < Instant::from_secs(2));
        // Exact spacing.
        assert_eq!(v[1].at - v[0].at, Duration::from_micros(100));
        // Cycles through the pool.
        assert_eq!(v[0].ue, UeId::new(0));
        assert_eq!(v[100].ue, UeId::new(0));
        assert_eq!(v[101].ue, UeId::new(1));
    }

    #[test]
    fn uniform_with_pool_attaches_everyone_first() {
        let (w, measured_start) = uniform_with_pool(
            UniformParams {
                rate_pps: 1_000,
                duration: Duration::from_millis(100),
                kind: ProcedureKind::ServiceRequest,
                ues: 50,
                first_ue: 0,
                start: Instant::ZERO,
            },
            10_000,
        );
        let v: Vec<_> = w.into_arrivals().collect();
        let attaches: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::InitialAttach)
            .collect();
        assert_eq!(attaches.len(), 50);
        assert!(attaches.iter().all(|a| a.at < measured_start));
        let srs: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::ServiceRequest)
            .collect();
        assert_eq!(srs.len(), 100);
        assert!(srs.iter().all(|a| a.at >= measured_start));
        // Every UE attached exactly once.
        let set: std::collections::HashSet<_> = attaches.iter().map(|a| a.ue).collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn burst_lands_inside_the_window() {
        let w = bursty_attach(BurstParams {
            active_users: 10_000,
            window: Duration::from_millis(50),
            kind: ProcedureKind::InitialAttach,
            first_ue: 1_000_000,
            start: Instant::from_secs(1),
        });
        let v: Vec<_> = w.into_arrivals().collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|a| a.at >= Instant::from_secs(1)));
        assert!(v
            .iter()
            .all(|a| a.at <= Instant::from_secs(1) + Duration::from_millis(50)));
        // Distinct devices.
        let set: std::collections::HashSet<_> = v.iter().map(|a| a.ue).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn flash_crowd_phases_are_ordered_and_complete() {
        let p = FlashCrowdParams {
            ues: 200,
            first_ue: 0,
            steady_pps: 100,
            attach_pps: 0,
            steady: Duration::from_secs(5),
            surge_delay: Duration::from_millis(300),
            surge_rate_pps: 10_000,
            tail: Duration::from_secs(2),
            start: Instant::ZERO,
        };
        let (w, sched) = flash_crowd_reattach(p);
        let v: Vec<_> = w.into_arrivals().collect();
        // Arrivals are time-ordered (phases chain without overlap).
        assert!(v.windows(2).all(|ab| ab[0].at <= ab[1].at));
        // Initial attach covers the whole pool before steady traffic.
        let initial: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::InitialAttach && a.at < sched.steady_start)
            .collect();
        assert_eq!(initial.len(), 200);
        // The herd: every UE re-attaches inside the surge window at the
        // surge rate's exact spacing.
        let herd: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::InitialAttach && a.at >= sched.surge_start)
            .collect();
        assert_eq!(herd.len(), 200);
        assert_eq!(sched.blackout_at, sched.steady_start + Duration::from_secs(5));
        assert_eq!(sched.surge_start, sched.blackout_at + Duration::from_millis(300));
        assert!(herd.iter().all(|a| a.at <= sched.surge_end));
        assert_eq!(herd[1].at - herd[0].at, Duration::from_micros(100));
        let set: std::collections::HashSet<_> = herd.iter().map(|a| a.ue).collect();
        assert_eq!(set.len(), 200);
        // Steady traffic resumes after the surge drains.
        assert!(v
            .iter()
            .any(|a| a.kind == ProcedureKind::ServiceRequest && a.at > sched.surge_end));
        // Nothing lands inside the dead zone between blackout and surge.
        assert!(!v
            .iter()
            .any(|a| a.at >= sched.blackout_at && a.at < sched.surge_start));
    }

    #[test]
    fn iot_storm_pulses_are_synchronized() {
        let p = IotStormParams {
            devices: 1_000,
            first_ue: 500_000,
            pulses: 3,
            period: Duration::from_secs(10),
            window: Duration::from_millis(100),
            kind: ProcedureKind::TrackingAreaUpdate,
            start: Instant::from_secs(1),
        };
        let v: Vec<_> = iot_burst_storm(p).into_arrivals().collect();
        // Pulse 0 attaches + 3 TAU pulses.
        assert_eq!(v.len(), 4_000);
        let attaches: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::InitialAttach)
            .collect();
        assert_eq!(attaches.len(), 1_000);
        assert!(attaches
            .iter()
            .all(|a| a.at <= Instant::from_secs(1) + Duration::from_millis(100)));
        // Each later pulse packs the fleet into its own window, period apart.
        for pulse in 1..=3u64 {
            let lo = Instant::from_secs(1) + Duration::from_secs(10 * pulse);
            let hi = lo + Duration::from_millis(100);
            let in_pulse = v
                .iter()
                .filter(|a| a.kind == ProcedureKind::TrackingAreaUpdate)
                .filter(|a| a.at >= lo && a.at <= hi)
                .count();
            assert_eq!(in_pulse, 1_000);
        }
        // Idle gaps between pulses.
        let gap_lo = Instant::from_secs(1) + Duration::from_millis(200);
        let gap_hi = Instant::from_secs(10);
        assert!(!v.iter().any(|a| a.at > gap_lo && a.at < gap_hi));
    }

    #[test]
    fn pool_sizing_is_bounded() {
        assert_eq!(UniformParams::pool_for_rate(1_000), 2_000);
        assert_eq!(UniformParams::pool_for_rate(160_000), 20_000);
        assert_eq!(UniformParams::pool_for_rate(10_000_000), 200_000);
    }
}
