//! The two synthetic traffic patterns of §6.1.

use neutrino_common::time::{Duration, Instant};
use neutrino_common::UeId;
use neutrino_core::uepop::Arrival;
use neutrino_core::Workload;
use neutrino_messages::procedures::ProcedureKind;

/// Parameters of the uniform pattern: "a pre-specified number of control
/// procedure requests per second" (the PPS x-axes of Figs. 7, 8, 10, 11,
/// 15, 16).
#[derive(Debug, Clone, Copy)]
pub struct UniformParams {
    /// Procedures per second.
    pub rate_pps: u64,
    /// Measurement duration.
    pub duration: Duration,
    /// Procedure kind under test.
    pub kind: ProcedureKind,
    /// UE pool size (each arrival cycles through the pool).
    pub ues: u64,
    /// First UE id (so pools can be disjoint across phases).
    pub first_ue: u64,
    /// When the first arrival fires.
    pub start: Instant,
}

impl UniformParams {
    /// A pool sized so that each UE is busy a small fraction of the time
    /// even near saturation.
    pub fn pool_for_rate(rate_pps: u64) -> u64 {
        (rate_pps / 8).clamp(2_000, 200_000)
    }
}

/// Uniform arrivals: exact `rate_pps` spacing, cycling through the pool.
pub fn uniform(p: UniformParams) -> Workload {
    let spacing_ns = 1_000_000_000u64 / p.rate_pps.max(1);
    let total = (p.duration.as_nanos() / spacing_ns.max(1)).max(1);
    let kind = p.kind;
    let (ues, first_ue, start) = (p.ues.max(1), p.first_ue, p.start);
    Workload::new((0..total).map(move |i| Arrival {
        at: start + Duration::from_nanos(i * spacing_ns),
        ue: UeId::new(first_ue + (i % ues)),
        kind,
    }))
}

/// Uniform arrivals preceded by an attach phase that registers the whole
/// pool (so non-attach procedures find attached UEs). The attach phase runs
/// at `attach_rate_pps`, then the measured phase starts.
pub fn uniform_with_pool(p: UniformParams, attach_rate_pps: u64) -> (Workload, Instant) {
    let attach_spacing = 1_000_000_000u64 / attach_rate_pps.max(1);
    let attach_end =
        p.start + Duration::from_nanos(p.ues * attach_spacing) + Duration::from_millis(200);
    let attach = (0..p.ues).map(move |i| Arrival {
        at: p.start + Duration::from_nanos(i * attach_spacing),
        ue: UeId::new(p.first_ue + i),
        kind: ProcedureKind::InitialAttach,
    });
    let measured = uniform(UniformParams {
        start: attach_end,
        ..p
    });
    (
        Workload::new(attach.chain(measured.into_arrivals())),
        attach_end,
    )
}

/// Parameters of the bursty IoT pattern (Figs. 9, 17): N devices issuing
/// requests in a synchronized window.
#[derive(Debug, Clone, Copy)]
pub struct BurstParams {
    /// Number of active devices.
    pub active_users: u64,
    /// The window all requests land in (the paper's 10 Gbps arrival process
    /// drains a burst in well under a second).
    pub window: Duration,
    /// Procedure each device runs.
    pub kind: ProcedureKind,
    /// First UE id.
    pub first_ue: u64,
    /// Burst start.
    pub start: Instant,
}

/// A synchronized burst: device `i` fires at `start + i·window/N` — the
/// pathological IoT wake-up the paper stresses.
pub fn bursty_attach(p: BurstParams) -> Workload {
    let n = p.active_users.max(1);
    let step_ns = p.window.as_nanos() / n;
    let (kind, first_ue, start) = (p.kind, p.first_ue, p.start);
    Workload::new((0..n).map(move |i| Arrival {
        at: start + Duration::from_nanos(i * step_ns),
        ue: UeId::new(first_ue + i),
        kind,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_hits_the_requested_rate() {
        let w = uniform(UniformParams {
            rate_pps: 10_000,
            duration: Duration::from_secs(2),
            kind: ProcedureKind::ServiceRequest,
            ues: 100,
            first_ue: 0,
            start: Instant::ZERO,
        });
        let v: Vec<_> = w.into_arrivals().collect();
        assert_eq!(v.len(), 20_000);
        let last = v.last().unwrap().at;
        assert!(last < Instant::from_secs(2));
        // Exact spacing.
        assert_eq!(v[1].at - v[0].at, Duration::from_micros(100));
        // Cycles through the pool.
        assert_eq!(v[0].ue, UeId::new(0));
        assert_eq!(v[100].ue, UeId::new(0));
        assert_eq!(v[101].ue, UeId::new(1));
    }

    #[test]
    fn uniform_with_pool_attaches_everyone_first() {
        let (w, measured_start) = uniform_with_pool(
            UniformParams {
                rate_pps: 1_000,
                duration: Duration::from_millis(100),
                kind: ProcedureKind::ServiceRequest,
                ues: 50,
                first_ue: 0,
                start: Instant::ZERO,
            },
            10_000,
        );
        let v: Vec<_> = w.into_arrivals().collect();
        let attaches: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::InitialAttach)
            .collect();
        assert_eq!(attaches.len(), 50);
        assert!(attaches.iter().all(|a| a.at < measured_start));
        let srs: Vec<_> = v
            .iter()
            .filter(|a| a.kind == ProcedureKind::ServiceRequest)
            .collect();
        assert_eq!(srs.len(), 100);
        assert!(srs.iter().all(|a| a.at >= measured_start));
        // Every UE attached exactly once.
        let set: std::collections::HashSet<_> = attaches.iter().map(|a| a.ue).collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn burst_lands_inside_the_window() {
        let w = bursty_attach(BurstParams {
            active_users: 10_000,
            window: Duration::from_millis(50),
            kind: ProcedureKind::InitialAttach,
            first_ue: 1_000_000,
            start: Instant::from_secs(1),
        });
        let v: Vec<_> = w.into_arrivals().collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|a| a.at >= Instant::from_secs(1)));
        assert!(v
            .iter()
            .all(|a| a.at <= Instant::from_secs(1) + Duration::from_millis(50)));
        // Distinct devices.
        let set: std::collections::HashSet<_> = v.iter().map(|a| a.ue).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn pool_sizing_is_bounded() {
        assert_eq!(UniformParams::pool_for_rate(1_000), 2_000);
        assert_eq!(UniformParams::pool_for_rate(160_000), 20_000);
        assert_eq!(UniformParams::pool_for_rate(10_000_000), 200_000);
    }
}
