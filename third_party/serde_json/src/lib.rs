//! Offline stand-in for `serde_json` (see `third_party/README.md`).
//!
//! Renders and parses JSON text over the local `serde` stand-in's
//! [`Value`] tree. Output formatting follows real serde_json: compact
//! (no spaces) for [`to_string`], 2-space indentation for
//! [`to_string_pretty`], floats via Rust's shortest round-trip formatting,
//! and non-finite floats as `null`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Renders compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- Rendering ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` gives the shortest round-trip form, like serde_json
                // (e.g. 1.5, 0.1, 3.0).
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_lit("null").map(|()| Value::Null),
            b't' => self.eat_lit("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII-ish payloads.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b => {
                    // Re-decode multi-byte UTF-8 starting at this byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or_else(|| Error::new("truncated UTF-8"))?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"x": -3, "y": [true, false, "s\n"], "z": 0.25}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn numbers_pick_narrowest_type() {
        assert_eq!(from_str::<Value>("7").unwrap(), Value::U64(7));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str::<Value>("7.5").unwrap(), Value::F64(7.5));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
