//! Offline stand-in for `serde` (see `third_party/README.md`).
//!
//! Real serde abstracts over serializers with a visitor architecture; this
//! stand-in collapses the data model to one concrete [`Value`] tree, which
//! is all the workspace needs (its only format is JSON via the sibling
//! `serde_json` stand-in). `#[derive(Serialize, Deserialize)]` is provided
//! by the local `serde_derive` proc-macro for the shapes the workspace
//! uses: named-field structs, tuple structs, and unit-variant enums
//! (honoring `#[serde(rename_all = "snake_case")]`).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The concrete serialization data model.
///
/// Maps preserve insertion order (struct declaration order), so derived
/// output is stable across runs and platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null (also the image of non-finite floats, as in serde_json).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values only; non-negatives use `U64`).
    I64(i64),
    /// Finite float.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as u64 when lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric view as i64 when lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Derive-support: looks up a struct field, treating a missing key as null
/// (so `Option` fields tolerate omission, like real serde's `default`).
pub fn __field<'a>(map: &'a [(String, Value)], name: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

// ---- Serialize impls ------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // serde_json maps non-finite floats to null.
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// JSON object keys must be strings; scalars are stringified like
/// serde_json does for map keys.
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a scalar, got {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output (HashMap iteration order is random).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

// ---- Deserialize impls ----------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(f64::NAN), // non-finite floats round-trip via null
            _ => v.as_f64().ok_or_else(|| DeError::new("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // Missing struct fields arrive as Null (see `__field`); treat them
        // as empty, like real serde's `#[serde(default)]`, so adding a Vec
        // field to a struct keeps older serialized forms parseable.
        if matches!(v, Value::Null) {
            return Ok(Vec::new());
        }
        let seq = v.as_seq().ok_or_else(|| DeError::new("expected array"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::new("expected object"))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::new("expected object"))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

/// Compatibility module path: `serde::ser::Serialize` etc.
pub mod ser {
    pub use super::Serialize;
}

/// Compatibility module path: `serde::de::Deserialize` etc.
pub mod de {
    pub use super::{DeError, Deserialize};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u64);
        m.insert("a".to_string(), 2u64);
        let keys: Vec<String> = match m.to_value() {
            Value::Map(entries) => entries.into_iter().map(|(k, _)| k).collect(),
            _ => panic!("expected map"),
        };
        assert_eq!(keys, vec!["a", "b"]);
    }
}
