//! Offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: integer-range / `any` / `Just` / tuple / charclass-regex
//! strategies, `prop_map`/`prop_flat_map`/`boxed`, `collection::{vec,
//! hash_set}`, `sample::{Index, select}`, `option::of`, `bool::ANY`,
//! weighted `prop_oneof!`, and the `proptest!`/`prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its inputs via the assertion message only), no failure persistence
//! (`*.proptest-regressions` files are ignored), and generation is seeded
//! deterministically from the test's module path and name, so runs are
//! reproducible without an environment variable.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator behind all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier so each test gets a stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then splitmix to spread it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Error signalled by `prop_assert*` from inside a test case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failed-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for struct-literal compatibility; shrinking is not
    /// implemented, so this is unused.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

// ---- Integer ranges -------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy {}..{}", self.start, self.end);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                // 53 uniform mantissa bits scaled into [start, end).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let span = (self.end - self.start) as f64;
                (self.start as f64 + unit * span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty float range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let span = (*self.end() - *self.start()) as f64;
                (*self.start() as f64 + unit * span) as $t
            }
        }
    )+};
}
float_range_strategy!(f32, f64);

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- Tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

// ---- Charclass "regex" strategy for string literals ----------------------

/// A string literal is a strategy for strings matching it as a regex.
/// Only the `[class]{lo,hi}` shape the workspace uses is supported.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_charclass(self);
        let len = lo + (rng.below((hi - lo + 1) as u64) as usize);
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn bad_pattern(pattern: &str) -> ! {
    panic!("proptest stand-in supports only `[class]{{lo,hi}}` string patterns, got {pattern:?}")
}

/// Parses `[a-z...]{lo,hi}` into (alphabet, lo, hi).
fn parse_charclass(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad_pattern(pattern));
    let close = rest.find(']').unwrap_or_else(|| bad_pattern(pattern));
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        bad_pattern(pattern);
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| bad_pattern(pattern));
    let (lo, hi) = counts.split_once(',').unwrap_or((counts, counts));
    let lo: usize = lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    let hi: usize = hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
    (chars, lo, hi)
}

// ---- Submodules -----------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + (rng.below((self.hi - self.lo + 1) as u64) as usize)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Hash sets of distinct elements; the target size is reached by
    /// redrawing on collision (bounded), like the real crate.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut tries = 0usize;
            while out.len() < target && tries < target.saturating_mul(50) + 50 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Strategy, TestRng};

    /// An index into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// Resolves against a concrete length (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty collection");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` half the time, otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Either boolean, uniformly.
    pub struct BoolAny;

    /// The strategy for any `bool`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Combinator support for `prop_oneof!`.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Weighted choice among same-valued strategies.
    pub struct OneOf<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    /// Builds the strategy behind `prop_oneof!`.
    pub fn one_of<T>(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { options, total }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights covered above")
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---- Macros ---------------------------------------------------------------

/// Declares property tests. Each inner `fn` becomes a generated-input test;
/// attributes (including `#[test]`) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (-1000i64..0).generate(&mut rng);
            assert!((-1000..0).contains(&v));
            let u = (1u8..5).generate(&mut rng);
            assert!((1..5).contains(&u));
            let w = (3usize..=3).generate(&mut rng);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn charclass_strings_match() {
        let mut rng = TestRng::from_name("charclass");
        let strat = "[a-c0-1 ._-]{0,8}";
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "abc01 ._-".contains(c)));
        }
    }

    #[test]
    fn collections_and_oneof() {
        let mut rng = TestRng::from_name("coll");
        let v = proptest::collection::vec(0u64..10, 2..5).generate(&mut rng);
        assert!((2..5).contains(&v.len()));
        let s = proptest::collection::hash_set(0u64..500, 3..4).generate(&mut rng);
        assert_eq!(s.len(), 3);
        let c = prop_oneof![Just(1u8), Just(2), Just(3)].generate(&mut rng);
        assert!((1..=3).contains(&c));
        let w = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut trues = 0;
        for _ in 0..100 {
            if w.generate(&mut rng) {
                trues += 1;
            }
        }
        assert!(trues > 50);
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_ne!(x, 100);
            }
            prop_assert_eq!(x, x, "context {}", x);
        }
    }
}
