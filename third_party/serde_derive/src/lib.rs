//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Derives `Serialize`/`Deserialize` against the local `serde` stand-in's
//! value-tree model. Parses the item by walking `proc_macro` token trees
//! directly (no `syn`/`quote` available offline) and emits the impl as a
//! source string. Supported shapes — the ones this workspace derives on:
//!
//! - structs with named fields (serialized as a map in declaration order)
//! - tuple structs (1 field: transparent newtype; N fields: a sequence)
//! - enums with only unit variants, honoring
//!   `#[serde(rename_all = "snake_case")]`
//!
//! Generic types and data-carrying enum variants are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item from its token stream.
struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(rename_all = "snake_case")]` present on the item.
    snake_case: bool,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Enum of unit variants: variant names in declaration order.
    Enum(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let name = rename(v, item.snake_case);
                    format!("{}::{v} => serde::Value::Str(\"{name}\".to_string()),", item.name)
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl should parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::__field(m, \"{f}\"))?,")
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| serde::DeError::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Kind::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if s.len() != {n} {{ return Err(serde::DeError::new(\"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{}\" => Ok({name}::{v}),", rename(v, item.snake_case)))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| serde::DeError::new(\"expected string for {name}\"))?;\n\
                 match s {{ {} _ => Err(serde::DeError::new(\"unknown {name} variant\")) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n}}"
    )
    .parse()
    .expect("generated Deserialize impl should parse")
}

/// `CamelCase` → `snake_case` when `#[serde(rename_all = "snake_case")]`
/// is present; otherwise the name is used verbatim.
fn rename(variant: &str, snake_case: bool) -> String {
    if !snake_case {
        return variant.to_string();
    }
    let mut out = String::with_capacity(variant.len() + 4);
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut snake_case = false;

    // Leading attributes: `#[...]`. Scan each for rename_all = "snake_case".
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_snake_case(g.stream()) {
                        snake_case = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }

    // Visibility: `pub` optionally followed by `(crate)` / `(super)` etc.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected item name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde stand-in derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde stand-in derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}` for `{name}`"),
    };

    Item { name, kind, snake_case }
}

/// True if an attribute body (tokens inside `#[...]`) is
/// `serde(... rename_all = "snake_case" ...)`.
fn attr_is_snake_case(body: TokenStream) -> bool {
    let mut toks = body.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) => {
            let text = g.stream().to_string();
            text.contains("rename_all") && text.contains("snake_case")
        }
        _ => false,
    }
}

/// Field names of a braced struct body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Per-field attributes and visibility.
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde stand-in derive: expected field name, found {other}"),
        }
        i += 1;
        // `:` then the type, up to the next comma outside angle brackets.
        debug_assert!(matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'));
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of top-level fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx == tokens.len() - 1 {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => variants.push(id.to_string()),
            other => panic!("serde stand-in derive: expected variant name in `{enum_name}`, found {other}"),
        }
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in derive: enum `{enum_name}` has a data-carrying variant, which is unsupported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde stand-in derive: enum `{enum_name}` has an explicit discriminant, which is unsupported"
            ),
            Some(other) => panic!("serde stand-in derive: unexpected token in `{enum_name}`: {other}"),
        }
    }
    variants
}
