//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships minimal local implementations of its external
//! dependencies (see `third_party/README.md`). This crate reproduces the
//! subset of the rand 0.8 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is xoshiro256** seeded via splitmix64 — *not* the ChaCha12
//! generator real `StdRng` uses, so streams differ from upstream rand. All
//! workspace consumers only require determinism for a fixed seed, which this
//! provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator yielding `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy. Offline stub: uses the current
    /// time, which is good enough for the non-test uses in this workspace
    /// (there are none today).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`]; mirrors rand 0.8's
/// `SampleRange<T>` shape so `rng.gen_range(0.0f64..1.0)` infers.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + uniform_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + uniform_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + uniform_f64(rng) as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator API (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly in `range`.
    fn gen_range<T, RR: SampleRange<T>>(&mut self, range: RR) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for rand's
    /// ChaCha12-based `StdRng`; different stream, same determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

/// Re-export mirroring rand's `rand::thread_rng` shape (time-seeded here).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// `rand::random` equivalent.
pub fn random<T: Standard>() -> T {
    T::sample_standard(&mut thread_rng())
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(10u64..20);
            assert!((10..20).contains(&i));
            let j = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&j));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
