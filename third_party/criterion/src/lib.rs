//! Offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! backed by a simple wall-clock harness: each target runs a calibrated
//! number of iterations per sample and reports the per-iteration mean and
//! min across samples. No statistics engine, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring criterion's entry type.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the target time spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let cfg = (self.measurement_time, self.warm_up_time, self.sample_size);
        run_bench(&label, cfg, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    fn config(&self) -> (Duration, Duration, usize) {
        (
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            self.sample_size.unwrap_or(self.criterion.sample_size),
        )
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.config(), f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.config(), |b| f(b, input));
        self
    }

    /// Ends the group (formatting separator, like the real crate).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimizing away a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, cfg: (Duration, Duration, usize), mut f: F) {
    let (measurement_time, warm_up_time, samples) = cfg;

    // Calibrate: run single iterations until warm-up time elapses to learn
    // the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_elapsed += b.elapsed;
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_elapsed.as_secs_f64() / warm_iters as f64;

    // Split the measurement budget into `samples` timed batches.
    let budget = measurement_time.as_secs_f64() / samples as f64;
    let iters_per_sample = if per_iter > 0.0 {
        ((budget / per_iter).round() as u64).max(1)
    } else {
        1
    };

    let mut best = f64::INFINITY;
    let mut total_time = 0.0;
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters_per_sample as f64;
        best = best.min(per);
        total_time += b.elapsed.as_secs_f64();
        total_iters += iters_per_sample;
    }
    let mean = total_time / total_iters as f64;
    println!(
        "{label:<60} time: [mean {} min {}] ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(best),
        samples,
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group; both the plain and `name =`/`config =`
/// invocation forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
