//! Offline stand-in for `parking_lot` (see `third_party/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! surface. A poisoned std lock (a panic while held) is unwrapped into the
//! inner guard, matching parking_lot's behavior of simply continuing.

#![forbid(unsafe_code)]

use std::sync;

/// A mutex that does not surface poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock that does not surface poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
