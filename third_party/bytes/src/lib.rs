//! Offline stand-in for the `bytes` crate (see `third_party/README.md`).
//!
//! Implements `BytesMut` as a thin wrapper over `Vec<u8>` plus the `Buf`
//! (reading) and `BufMut` (writing) trait subset the framing layer uses.
//! All integers are big-endian, matching the real crate's `put_*`/`get_*`
//! defaults.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    /// Read cursor for `Buf` on an owned buffer.
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner[self.read..]
    }

    /// Copies the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Consumes the buffer into its unread bytes.
    pub fn freeze(self) -> Vec<u8> {
        if self.read == 0 {
            self.inner
        } else {
            self.inner[self.read..].to_vec()
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.read = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.inner[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.freeze()
    }
}

/// Sequential reader over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor and returns the consumed prefix.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let b = self.take_bytes(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let b = self.take_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.take_bytes(n);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun: {} < {}", self.len(), n);
        let (head, tail) = std::mem::take(self).split_at(n);
        *self = tail;
        head
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun: {} < {}", self.len(), n);
        let start = self.read;
        self.read += n;
        &self.inner[start..start + n]
    }
}

/// Sequential writer into a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let bytes = buf.to_vec();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn owned_buffer_reads_consume() {
        let mut buf = BytesMut::new();
        buf.put_u32(5);
        assert_eq!(buf.remaining(), 4);
        assert_eq!(buf.get_u32(), 5);
        assert_eq!(buf.remaining(), 0);
        assert!(buf.is_empty());
    }
}
