//! Offline stand-in for `crossbeam-channel` (see `third_party/README.md`).
//!
//! Backs the unbounded-channel subset the workspace uses with
//! `std::sync::mpsc`. Multi-producer single-consumer is all the mesh needs;
//! the real crate's multi-consumer clone of `Receiver` is not provided.

#![forbid(unsafe_code)]

use std::sync::mpsc;
use std::time::Duration;

pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message; errors only if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg)
    }
}

/// Receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Blocking iterator draining the channel until all senders are gone.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.inner.iter()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_iter() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn timeout_expires() {
        let (tx, rx) = unbounded::<u8>();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
    }
}
