//! # Neutrino — a low latency and consistent cellular control plane
//!
//! A from-scratch Rust reproduction of *"A Low Latency and Consistent
//! Cellular Control Plane"* (SIGCOMM 2020): the Neutrino control plane —
//! Read-your-Writes consistency through per-procedure checkpointing and CTA
//! message logging, proactive geo-replication over two-level consistent
//! hash rings, and an optimized FlatBuffers serialization engine — together
//! with every substrate it needs (an ASN.1 PER codec, an S1AP/NAS message
//! model, a discrete-event testbed simulator, a UPF, traffic generation,
//! edge application models) and every baseline it is compared against
//! (existing EPC, SkyCore, DPCM).
//!
//! This crate re-exports the workspace members under one roof; see README.md
//! for the tour and DESIGN.md for the architecture and experiment index.
//!
//! ```
//! use neutrino::prelude::*;
//!
//! // Simulate 200 attaches against the full Neutrino deployment.
//! let workload = Workload::from_vec(
//!     (0..200u64).map(|u| Arrival {
//!         at: Instant::from_micros(u * 500),
//!         ue: UeId::new(u),
//!         kind: ProcedureKind::InitialAttach,
//!     }).collect(),
//! );
//! let spec = ExperimentSpec::new(SystemConfig::neutrino(), workload);
//! let mut results = run_experiment(spec);
//! assert_eq!(results.completed, 200);
//! assert!(results.summary(ProcedureKind::InitialAttach).p50 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub use neutrino_apps as apps;
pub use neutrino_codec as codec;
pub use neutrino_common as common;
pub use neutrino_core as core;
pub use neutrino_cpf as cpf;
pub use neutrino_cta as cta;
pub use neutrino_geo as geo;
pub use neutrino_messages as messages;
pub use neutrino_net as net;
pub use neutrino_netsim as netsim;
pub use neutrino_trafficgen as trafficgen;
pub use neutrino_upf as upf;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use neutrino_common::time::{Duration, Instant};
    pub use neutrino_common::{BsId, CpfId, CtaId, UeId, UpfId};
    pub use neutrino_core::experiment::{
        primary_cpf_for, run_experiment, ExperimentSpec, FailureSpec,
    };
    pub use neutrino_core::uepop::Arrival;
    pub use neutrino_core::{SystemConfig, Workload};
    pub use neutrino_messages::procedures::ProcedureKind;
}
