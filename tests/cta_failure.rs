//! Failure scenario 4 (§4.2.5): the CTA itself fails.
//!
//! "As we do not backup CTA state, recovery in failure scenario 4 is
//! exactly similar to that of scenario 3. When a CTA fails, the UE executes
//! the Re-Attach procedure, through a new CTA, creating (i) fresh state for
//! the UE at new CPF(s) and (ii) a mapping of the UE to a specific CPF on
//! the new CTA."

use neutrino::prelude::*;
use neutrino_core::cluster::{Cluster, LinkProfile};
use neutrino_core::UePopConfig;
use neutrino_geo::RegionLayout;

fn build(config: SystemConfig, ues: u64, retry_ms: u64) -> Cluster {
    let mut arrivals = Vec::new();
    for u in 0..ues {
        arrivals.push(Arrival {
            at: Instant::from_micros(u * 400),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        });
        // A service request scheduled after the CTA will be dead.
        arrivals.push(Arrival {
            at: Instant::from_millis(200) + Duration::from_micros(u * 400),
            ue: UeId::new(u),
            kind: ProcedureKind::ServiceRequest,
        });
    }
    let mut uecfg = UePopConfig {
        retry_timeout: Duration::from_millis(retry_ms),
        max_retries: 1,
        ..Default::default()
    };
    for u in 0..ues {
        uecfg.record_windows_for.insert(UeId::new(u));
    }
    Cluster::build(
        config,
        RegionLayout::default(),
        Workload::from_vec(arrivals),
        uecfg,
        LinkProfile::default(),
    )
}

#[test]
fn ues_recover_through_a_new_cta() {
    for config in [SystemConfig::neutrino(), SystemConfig::existing_epc()] {
        let name = config.name;
        let mut cluster = build(config, 20, 100);
        // Attaches complete by ~100 ms; the region-0 CTA dies before the
        // service requests start.
        cluster.fail_cta_at(Instant::from_millis(150), 0);
        cluster.run_until(Instant::from_secs(120));
        let results = cluster.take_results();
        assert_eq!(
            results.incomplete, 0,
            "{name}: every UE must eventually recover: {results:?}"
        );
        assert!(
            results.re_attached >= 20,
            "{name}: recovery is by re-attach through the new CTA \
             (re_attached={})",
            results.re_attached
        );
        // The service requests completed — after the re-attach established
        // fresh state at the new region's CPFs.
        assert!(
            results.completed >= 40,
            "{name}: attaches + service requests all done ({})",
            results.completed
        );
    }
}

#[test]
fn scenario4_pct_includes_the_ue_side_timeout() {
    // Scenario-4 recovery is UE-driven: the PCT of an interrupted procedure
    // includes at least one retry timeout before the re-attach (unlike the
    // CPF-failure scenarios, where the CTA notice recovers proactively).
    let mut cluster = build(SystemConfig::neutrino(), 10, 80);
    cluster.fail_cta_at(Instant::from_millis(150), 0);
    cluster.run_until(Instant::from_secs(120));
    let results = cluster.take_results();
    let slow_srs = results
        .windows
        .iter()
        .filter(|w| {
            w.kind == ProcedureKind::ServiceRequest
                && w.end.saturating_since(w.start) >= Duration::from_millis(80)
        })
        .count();
    assert!(
        slow_srs >= 10,
        "interrupted service requests must carry the timeout: {} of {:?}",
        slow_srs,
        results.windows.len()
    );
}

#[test]
fn healthy_regions_are_unaffected_by_a_remote_cta_failure() {
    // Crash a *sibling* region's CTA: region 0 traffic must not notice.
    let mut cluster = build(SystemConfig::neutrino(), 20, 100);
    cluster.fail_cta_at(Instant::from_millis(50), 2);
    cluster.run_until(Instant::from_secs(60));
    let results = cluster.take_results();
    assert_eq!(results.incomplete, 0);
    assert_eq!(results.re_attached, 0, "nobody re-attaches: {results:?}");
    assert_eq!(results.retransmissions, 0);
}
