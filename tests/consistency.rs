//! Cross-crate consistency tests: the Read-your-Writes contract of §4.2
//! checked over the whole assembled system, including under randomized
//! fault schedules (proptest).
//!
//! The observable contract (DESIGN.md §7): after a UE completes a control
//! procedure, the CPF that serves its next message holds state reflecting
//! that procedure — or the UE is explicitly re-attached, never silently
//! served from stale state. We check it two ways:
//!
//! 1. after a run fully drains, the serving CPF's state version equals the
//!    last procedure the UE completed (captured via probe windows);
//! 2. every procedure eventually completes (liveness) despite crashes.

use neutrino::prelude::*;
use neutrino_core::cluster::{Cluster, LinkProfile};
use neutrino_core::experiment::adapt_workload;
use neutrino_core::UePopConfig;
use neutrino_geo::RegionLayout;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Builds a mixed workload: every UE attaches, then runs `extra` more
/// procedures drawn from the mix, spaced `spacing_us` apart.
fn mixed_workload(ues: u64, extra: usize, spacing_us: u64, mix_seed: u64) -> Vec<Arrival> {
    let kinds = [
        ProcedureKind::ServiceRequest,
        ProcedureKind::TrackingAreaUpdate,
        ProcedureKind::HandoverWithCpfChange,
        ProcedureKind::ServiceRequest,
    ];
    let mut v = Vec::new();
    for u in 0..ues {
        v.push(Arrival {
            at: Instant::from_micros(u * spacing_us),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        });
        for k in 0..extra {
            let kind = kinds[((mix_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u * 31 + k as u64))
                % kinds.len() as u64) as usize];
            v.push(Arrival {
                at: Instant::from_millis(60 + k as u64 * 40)
                    + Duration::from_micros(u * spacing_us),
                ue: UeId::new(u),
                kind,
            });
        }
    }
    v
}

/// Runs a cluster to completion with optional failures; returns the cluster
/// (for state inspection) and the UE population results.
fn run_cluster(
    config: SystemConfig,
    arrivals: Vec<Arrival>,
    failures: Vec<(Instant, neutrino::common::CpfId)>,
    probe_all_up_to: u64,
) -> (Cluster, neutrino_core::uepop::UePopResults) {
    let mut uecfg = UePopConfig::default();
    for u in 0..probe_all_up_to {
        uecfg.record_windows_for.insert(UeId::new(u));
    }
    let workload = adapt_workload(&config, Workload::from_vec(arrivals));
    let mut cluster = Cluster::build(
        config,
        RegionLayout::default(),
        workload,
        uecfg,
        LinkProfile::default(),
    );
    for (at, cpf) in failures {
        cluster.fail_cpf_at(at, cpf);
    }
    cluster.run_until(Instant::from_secs(600));
    let results = cluster.take_results();
    (cluster, results)
}

/// The core RYW check: each probed UE's serving CPF holds exactly the state
/// version of the UE's last completed procedure.
fn assert_ryw(cluster: &mut Cluster, results: &neutrino_core::uepop::UePopResults, ues: u64) {
    let mut last_completed: HashMap<UeId, neutrino::common::ProcedureId> = HashMap::new();
    for w in &results.windows {
        let e = last_completed.entry(w.ue).or_insert(w.procedure);
        if w.procedure > *e {
            *e = w.procedure;
        }
    }
    assert!(!last_completed.is_empty(), "probes recorded completions");
    for u in 0..ues {
        let ue = UeId::new(u);
        let expected = match last_completed.get(&ue) {
            Some(p) => *p,
            None => continue,
        };
        assert!(
            cluster.ue_servable(ue),
            "{ue}: serving CPF must hold fresh (not outdated) state"
        );
        let version = cluster
            .ue_state_version(ue)
            .unwrap_or_else(|| panic!("{ue}: serving CPF holds no state"));
        assert_eq!(
            version.procedure, expected,
            "{ue}: serving CPF's state must reflect the last completed \
             procedure (Read-your-Writes)"
        );
    }
}

#[test]
fn ryw_holds_without_failures() {
    let (mut cluster, results) = run_cluster(
        SystemConfig::neutrino(),
        mixed_workload(40, 3, 700, 1),
        vec![],
        40,
    );
    assert_eq!(results.started, 40 * 4);
    assert_eq!(results.completed, 40 * 4);
    assert_ryw(&mut cluster, &results, 40);
}

#[test]
fn ryw_holds_across_a_cpf_failure() {
    let config = SystemConfig::neutrino();
    let victim =
        neutrino_core::experiment::primary_cpf_for(&config, RegionLayout::default(), UeId::new(0))
            .unwrap();
    let (mut cluster, results) = run_cluster(
        config,
        mixed_workload(40, 3, 700, 2),
        vec![(Instant::from_millis(80), victim)],
        40,
    );
    assert_eq!(
        results.incomplete, 0,
        "liveness despite the crash: {results:?}"
    );
    assert!(results.completed >= 160 - results.skipped_busy);
    assert_ryw(&mut cluster, &results, 40);
}

#[test]
fn ryw_holds_for_epc_via_re_attach() {
    // The EPC maintains RYW the expensive way: re-attach recreates state.
    let config = SystemConfig::existing_epc();
    let victim =
        neutrino_core::experiment::primary_cpf_for(&config, RegionLayout::default(), UeId::new(0))
            .unwrap();
    let (mut cluster, results) = run_cluster(
        config,
        mixed_workload(40, 3, 700, 3),
        vec![(Instant::from_millis(80), victim)],
        40,
    );
    assert_eq!(results.incomplete, 0, "liveness: {results:?}");
    assert!(results.completed >= 160 - results.skipped_busy);
    assert!(results.re_attached > 0, "the crash must force re-attaches");
    assert_ryw(&mut cluster, &results, 40);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Randomized fault schedules: one or two CPFs crash at arbitrary times
    /// while a mixed workload runs. Liveness and RYW must hold for both the
    /// replicated system and (via re-attach) the EPC baseline.
    #[test]
    fn ryw_under_randomized_faults(
        mix_seed in 0u64..1_000,
        fail_ms in 20u64..300,
        second_failure in proptest::option::of(320u64..500),
        epc in proptest::bool::ANY,
    ) {
        let config = if epc {
            SystemConfig::existing_epc()
        } else {
            SystemConfig::neutrino()
        };
        // Victims: the CPFs serving UE 0 and UE 1 (usually distinct).
        let layout = RegionLayout::default();
        let v0 = neutrino_core::experiment::primary_cpf_for(&config, layout, UeId::new(0)).unwrap();
        let mut failures = vec![(Instant::from_millis(fail_ms), v0)];
        if let Some(ms2) = second_failure {
            let v1 = neutrino_core::experiment::primary_cpf_for(&config, layout, UeId::new(1)).unwrap();
            if v1 != v0 {
                failures.push((Instant::from_millis(ms2), v1));
            }
        }
        let (mut cluster, results) = run_cluster(
            config,
            mixed_workload(30, 3, 900, mix_seed),
            failures,
            30,
        );
        prop_assert_eq!(
            results.incomplete,
            0,
            "liveness under faults: re_attached={} retrans={}",
            results.re_attached,
            results.retransmissions
        );
        // RYW on every probed UE.
        let mut last_completed: HashMap<UeId, neutrino::common::ProcedureId> = HashMap::new();
        for w in &results.windows {
            let e = last_completed.entry(w.ue).or_insert(w.procedure);
            if w.procedure > *e {
                *e = w.procedure;
            }
        }
        for (&ue, &expected) in &last_completed {
            prop_assert!(cluster.ue_servable(ue), "{} not servable", ue);
            let version = cluster.ue_state_version(ue).expect("state exists");
            prop_assert_eq!(version.procedure, expected, "{} state lags", ue);
        }
    }
}

#[test]
fn all_four_systems_survive_the_same_trace() {
    // The same mixed workload through every baseline: everything completes,
    // and the serving CPFs end fresh.
    let mut medians: HashMap<&'static str, f64> = HashMap::new();
    for config in SystemConfig::comparison_set() {
        let name = config.name;
        let (_cluster, results) = run_cluster(config, mixed_workload(60, 2, 400, 9), vec![], 0);
        assert_eq!(results.incomplete, 0, "{name}");
        let mut all = neutrino::common::stats::Percentiles::new();
        for p in results.pct.values() {
            all.merge(p);
        }
        medians.insert(name, all.median());
    }
    // Neutrino must be the fastest of the four.
    let neutrino = medians["Neutrino"];
    for (name, m) in &medians {
        assert!(
            neutrino <= *m + 1e-9,
            "Neutrino ({neutrino} ms) must not lose to {name} ({m} ms)"
        );
    }
}

#[test]
fn skycore_generates_the_most_sync_traffic() {
    // §6.2/§8: SkyCore broadcasts state on every message — the sync traffic
    // that makes it unscalable.
    let mut syncs = HashMap::new();
    for config in [
        SystemConfig::skycore(),
        SystemConfig::neutrino(),
        SystemConfig::existing_epc(),
    ] {
        let name = config.name;
        let (mut cluster, _results) = run_cluster(config, mixed_workload(50, 2, 500, 4), vec![], 0);
        syncs.insert(name, cluster.cpf_metrics().syncs_sent);
    }
    assert_eq!(syncs["ExistingEPC"], 0);
    assert!(
        syncs["SkyCore"] > 3 * syncs["Neutrino"],
        "SkyCore {} vs Neutrino {}",
        syncs["SkyCore"],
        syncs["Neutrino"]
    );
    assert!(syncs["Neutrino"] > 0);
}

#[test]
fn distinct_ues_never_share_sessions() {
    // Cross-crate sanity: each attached UE ends with its own session id.
    let (mut cluster, results) = run_cluster(
        SystemConfig::neutrino(),
        mixed_workload(30, 1, 600, 5),
        vec![],
        30,
    );
    assert_eq!(results.incomplete, 0);
    let mut seen = HashSet::new();
    for u in 0..30 {
        let ue = UeId::new(u);
        if let Some(cpf) = cluster.serving_cpf(ue) {
            let node = cluster
                .sim
                .node_as::<neutrino_core::simnode::CpfNode>(neutrino_core::simnode::cpf_node(cpf))
                .unwrap();
            if let Some(rec) = node.core().store().get(ue) {
                if let Some(session) = rec.state.session {
                    assert!(seen.insert(session), "duplicate session {session}");
                }
            }
        }
    }
    assert!(!seen.is_empty());
}
