//! The §3.1 / Figure 2 scenario, end to end: downlink reachability when a
//! CPF fails right after attach.
//!
//! "UE attaches ... the CPF fails [before updating the replica] ... if the
//! user receives a voice call or downlink data, the core network will not
//! be able to send it to the UE."
//!
//! The disruption is about *paging*: an idle UE can only be reached if the
//! control plane still holds its state. Neutrino's per-procedure checkpoint
//! means a backup has the state and pages the UE; the EPC's only recourse
//! is waking the UE through a re-attach (after which the session is
//! recreated).

use neutrino::prelude::*;
use neutrino_core::cluster::{Cluster, LinkProfile};
use neutrino_core::UePopConfig;
use neutrino_geo::RegionLayout;

struct Outcome {
    delivered_at: Option<Instant>,
    paged: u64,
    re_attached: u64,
}

/// Runs the Figure-2 timeline for one system and reports when the downlink
/// data finally reached the UE.
fn figure2(config: SystemConfig) -> Outcome {
    let ue = UeId::new(0);
    let victim =
        neutrino_core::experiment::primary_cpf_for(&config, RegionLayout::default(), ue).unwrap();

    // A small population attaches; UE 0 is the subject.
    let arrivals: Vec<Arrival> = (0..30u64)
        .map(|u| Arrival {
            at: Instant::from_micros(u * 300),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        })
        .collect();
    let mut cluster = Cluster::build(
        config,
        RegionLayout::default(),
        Workload::from_vec(arrivals),
        UePopConfig::default(),
        LinkProfile::default(),
    );

    // Let every attach complete, then the UE goes idle (inactivity).
    cluster.run_until(Instant::from_millis(100));
    cluster.release_ue_to_idle(ue);

    // The UE's primary CPF dies before serving anything else.
    cluster.fail_cpf_at(Instant::from_millis(120), victim);

    // Downlink data (a voice call, a push message) arrives for the idle UE.
    cluster.inject_downlink_data_at(Instant::from_millis(150), ue);
    // And again periodically until connectivity returns (the caller
    // retries).
    for k in 1..40u64 {
        cluster.inject_downlink_data_at(Instant::from_millis(150 + k * 50), ue);
    }
    cluster.run_until(Instant::from_secs(30));

    let delivered_at = cluster
        .downlink_log()
        .iter()
        .find(|(_, u, delivered)| *u == ue && *delivered)
        .map(|(t, _, _)| *t);
    let results = cluster.take_results();
    Outcome {
        delivered_at,
        paged: results.paged,
        re_attached: results.re_attached,
    }
}

#[test]
fn neutrino_pages_the_ue_from_a_replica() {
    let o = figure2(SystemConfig::neutrino());
    let t = o
        .delivered_at
        .expect("downlink data must eventually reach the UE");
    assert!(o.paged > 0, "the backup CPF must have paged the UE");
    assert_eq!(o.re_attached, 0, "no re-attach needed: the replica serves");
    // Recovery is one page + one service request after the first retry.
    assert!(
        t < Instant::from_millis(400),
        "Neutrino reachability restored late: {t:?}"
    );
}

#[test]
fn epc_reaches_the_ue_only_after_re_attach() {
    let o = figure2(SystemConfig::existing_epc());
    o.delivered_at
        .expect("the EPC eventually restores reachability too");
    assert!(
        o.re_attached > 0,
        "without replicas the UE must be re-attached"
    );
    assert_eq!(o.paged, 0, "no CPF held state to page from");
}

#[test]
fn neutrino_restores_reachability_faster_than_epc() {
    let n = figure2(SystemConfig::neutrino())
        .delivered_at
        .expect("neutrino delivers");
    let e = figure2(SystemConfig::existing_epc())
        .delivered_at
        .expect("epc delivers");
    assert!(
        n <= e,
        "Neutrino ({n:?}) must not be slower than the EPC ({e:?}) at \
         restoring downlink reachability"
    );
}

#[test]
fn active_sessions_deliver_without_control_plane_help() {
    // Control-plane failure does not break the data plane for connected
    // UEs: deliveries succeed with no paging at all.
    let config = SystemConfig::neutrino();
    let ue = UeId::new(0);
    let victim =
        neutrino_core::experiment::primary_cpf_for(&config, RegionLayout::default(), ue).unwrap();
    let arrivals = vec![Arrival {
        at: Instant::ZERO,
        ue,
        kind: ProcedureKind::InitialAttach,
    }];
    let mut cluster = Cluster::build(
        config,
        RegionLayout::default(),
        Workload::from_vec(arrivals),
        UePopConfig::default(),
        LinkProfile::default(),
    );
    cluster.run_until(Instant::from_millis(50));
    cluster.fail_cpf_at(Instant::from_millis(60), victim);
    cluster.inject_downlink_data_at(Instant::from_millis(80), ue);
    cluster.run_until(Instant::from_secs(2));
    let log = cluster.downlink_log();
    assert!(
        log.iter().any(|(_, u, d)| *u == ue && *d),
        "active session must keep forwarding: {log:?}"
    );
    assert_eq!(cluster.take_results().paged, 0);
}
