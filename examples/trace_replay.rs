//! Generates a synthetic ng4T-like signaling trace (the paper's proprietary
//! input, §6.1), archives it as JSON lines, reloads it, and replays it
//! through the simulated Neutrino deployment.
//!
//! ```text
//! cargo run --example trace_replay --release
//! ```

use neutrino::prelude::*;
use neutrino_trafficgen::{Trace, TraceGenerator, TraceParams};

fn main() {
    let params = TraceParams {
        devices: 3_000,
        duration: Duration::from_secs(120),
        seed: 42,
        ..TraceParams::default()
    };
    let trace = TraceGenerator::new(params).generate();
    println!(
        "generated trace: {} records from {} devices over {:.0}s",
        trace.records.len(),
        params.devices,
        params.duration.as_secs_f64()
    );
    println!(
        "mean service-request inter-arrival: {:.1}s (published statistic: 106.9s)",
        trace.mean_sr_interarrival_secs()
    );

    // Archive and reload — runs replay bit-for-bit from the file.
    let path = std::env::temp_dir().join("neutrino_trace.jsonl");
    std::fs::write(&path, trace.to_jsonl()).expect("write trace");
    let reloaded =
        Trace::from_jsonl(&std::fs::read_to_string(&path).expect("read")).expect("parse trace");
    assert_eq!(reloaded.records.len(), trace.records.len());
    println!("archived + reloaded from {}", path.display());

    for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
        let name = config.name;
        let mut spec = ExperimentSpec::new(config, reloaded.workload());
        spec.horizon = Duration::from_secs(200);
        let mut results = run_experiment(spec);
        println!("\n=== {name} ===");
        println!(
            "  completed {} of {} procedures ({} re-attaches)",
            results.completed, results.started, results.re_attached
        );
        for kind in [
            ProcedureKind::InitialAttach,
            ProcedureKind::ServiceRequest,
            ProcedureKind::TrackingAreaUpdate,
        ] {
            let s = results.summary(kind);
            if s.count > 0 {
                println!(
                    "  {:<22} p50={:>8.3}ms  p95={:>8.3}ms  n={}",
                    kind.name(),
                    s.p50,
                    s.p95,
                    s.count
                );
            }
        }
    }
}
