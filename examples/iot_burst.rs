//! Bursty IoT attach storm (the Fig. 9 scenario): tens of thousands of
//! devices wake up in the same 100 ms window.
//!
//! ```text
//! cargo run --example iot_burst --release [devices]
//! ```

use neutrino::prelude::*;
use neutrino_trafficgen::{bursty_attach, BurstParams};

fn main() {
    let devices: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    println!("{devices} IoT devices attach within 100 ms:");
    println!();
    for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
        let name = config.name;
        let workload = bursty_attach(BurstParams {
            active_users: devices,
            window: Duration::from_millis(100),
            kind: ProcedureKind::InitialAttach,
            first_ue: 0,
            start: Instant::from_millis(10),
        });
        let mut spec = ExperimentSpec::new(config, workload);
        spec.horizon = Duration::from_secs(600);
        spec.uecfg.retry_timeout = Duration::from_secs(120);
        let mut results = run_experiment(spec);
        let s = results.summary(ProcedureKind::InitialAttach);
        println!(
            "{name:<14} p25={:>9.2}ms  p50={:>9.2}ms  p75={:>9.2}ms  max={:>9.2}ms  ({} attached)",
            s.p25, s.p50, s.p75, s.max, s.count
        );
    }
    println!();
    println!("The burst floods the CPF queues; Neutrino's cheaper per-message");
    println!("serialization drains them roughly twice as fast (§6.3, Fig. 9).");
}
