//! Live (wall-clock) deployment: the same protocol cores that run in the
//! simulator, on real threads with real hop-by-hop serialization. Acts as
//! the UE/BS, runs attach + service requests, and times them — once over
//! ASN.1 PER frames and once over optimized fastbuf frames.
//!
//! ```text
//! cargo run --example live_mesh --release
//! ```

use neutrino::codec::CodecKind;
use neutrino::prelude::*;
use neutrino_cpf::{CpfConfig, CpfCore};
use neutrino_cta::{CtaConfig, CtaCore};
use neutrino_geo::RingStack;
use neutrino_messages::{Envelope, MessageKind, SysMsg};
use neutrino_net::mesh::{Mesh, MeshConfig, NodeAddr};
use neutrino_upf::UpfCore;
use std::time::{Duration as StdDuration, Instant as StdInstant};

fn build(codec: CodecKind) -> Mesh {
    let cpfs: Vec<CpfId> = (0..5).map(CpfId::new).collect();
    let ring = RingStack::new(&cpfs, &[], 2);
    let mut mesh = Mesh::new(MeshConfig {
        codec,
        serialize_on_wire: true,
    });
    mesh.spawn_cta(CtaCore::new(
        CtaConfig::neutrino(CtaId::new(0), codec),
        ring.clone(),
    ));
    for &cpf in &cpfs {
        mesh.spawn_cpf(CpfCore::new(CpfConfig::neutrino(
            cpf,
            ring.clone(),
            vec![UpfId::new(0)],
        )));
    }
    mesh.spawn_upf(UpfCore::new(UpfId::new(0)));
    mesh
}

/// Runs one attach + N service requests as the UE; returns mean SR latency.
fn drive(mesh: &Mesh, ue: u64, service_requests: u32) -> StdDuration {
    let timeout = StdDuration::from_secs(5);
    let ul = |proc: u64, kind: ProcedureKind, msg: MessageKind, eop: bool| {
        let mut env = Envelope::uplink(
            UeId::new(ue),
            neutrino::common::ProcedureId::new(proc),
            kind,
            msg.sample(ue),
        )
        .from_bs(BsId::new(0));
        if eop {
            env = env.ending_procedure();
        }
        mesh.send(NodeAddr::Cta(CtaId::new(0)), &SysMsg::Control(env));
    };

    // Attach.
    ul(
        1,
        ProcedureKind::InitialAttach,
        MessageKind::InitialUeMessage,
        false,
    );
    mesh.recv_timeout(timeout).expect("attach accept");
    ul(
        1,
        ProcedureKind::InitialAttach,
        MessageKind::InitialContextSetupResponse,
        false,
    );
    ul(
        1,
        ProcedureKind::InitialAttach,
        MessageKind::AttachComplete,
        true,
    );

    // Timed service requests.
    let mut total = StdDuration::ZERO;
    for i in 0..service_requests {
        let started = StdInstant::now();
        ul(
            2 + u64::from(i),
            ProcedureKind::ServiceRequest,
            MessageKind::ServiceRequest,
            false,
        );
        mesh.recv_timeout(timeout).expect("bearer restore");
        total += started.elapsed();
        ul(
            2 + u64::from(i),
            ProcedureKind::ServiceRequest,
            MessageKind::InitialContextSetupResponse,
            true,
        );
    }
    total / service_requests
}

fn main() {
    const ROUNDS: u32 = 2_000;
    println!("live mesh: 1 CTA, 5 CPFs, 1 UPF on real threads; frames encoded per hop");
    for codec in [CodecKind::Asn1Per, CodecKind::FastbufOptimized] {
        let mesh = build(codec);
        // Warm up the thread mesh before timing.
        drive(&mesh, 1, 50);
        let mean = drive(&mesh, 2, ROUNDS);
        println!(
            "  {:<14} mean service-request round trip over {ROUNDS} runs: {:>8.1} us",
            codec.name(),
            mean.as_secs_f64() * 1e6
        );
        mesh.shutdown();
    }
    println!("(wall-clock numbers include OS scheduling; the serialization gap");
    println!(" is the paper's §4.4 effect, live on your machine)");
}
