//! Failure recovery demo: crash the primary CPF mid-procedure and watch the
//! four §4.2.5 failure scenarios resolve.
//!
//! ```text
//! cargo run --example failover_demo --release
//! ```

use neutrino::prelude::*;
use neutrino_geo::RegionLayout;

fn main() {
    // A small population attaches, then keeps issuing service requests. One
    // CPF dies mid-run.
    let build_workload = || {
        let mut v = Vec::new();
        for u in 0..500u64 {
            v.push(Arrival {
                at: Instant::from_micros(u * 200),
                ue: UeId::new(u),
                kind: ProcedureKind::InitialAttach,
            });
            for round in 0..3u64 {
                v.push(Arrival {
                    at: Instant::from_millis(150 + round * 100) + Duration::from_micros(u * 150),
                    ue: UeId::new(u),
                    kind: ProcedureKind::ServiceRequest,
                });
            }
        }
        Workload::from_vec(v)
    };

    for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
        let name = config.name;
        let victim =
            primary_cpf_for(&config, RegionLayout::default(), UeId::new(0)).expect("cpfs exist");
        let mut spec = ExperimentSpec::new(config, build_workload());
        spec.failures.push(FailureSpec {
            at: Instant::from_millis(230),
            cpf: victim,
        });
        let mut results = run_experiment(spec);

        println!("=== {name} (crashed {victim} at t=230ms) ===");
        println!(
            "  procedures completed : {}/{}",
            results.completed, results.started
        );
        println!(
            "  service request p50  : {:.3} ms   p99: {:.3} ms",
            results.summary(ProcedureKind::ServiceRequest).p50,
            results.summary(ProcedureKind::ServiceRequest).p99,
        );
        println!(
            "  failovers (scenario 1, up-to-date backup) : {}",
            results.cta.failover_up_to_date
        );
        println!(
            "  failovers (scenario 2, log replay)        : {}",
            results.cta.failover_replayed
        );
        println!(
            "  failovers (scenario 3, re-attach)         : {}",
            results.cta.failover_re_attach
        );
        println!(
            "  UE re-attaches performed                  : {}",
            results.re_attached
        );
        println!();
    }
    println!("Neutrino masks the failure with replica promotion + log replay;");
    println!("the existing EPC can only ask affected UEs to re-attach.");
}
