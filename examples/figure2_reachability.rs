//! The paper's motivating example (§3.1, Figure 2), live: a CPF fails right
//! after a UE attaches, then downlink data (a voice call) arrives for the
//! now-idle UE. Can the core still reach it?
//!
//! ```text
//! cargo run --example figure2_reachability --release
//! ```

use neutrino::prelude::*;
use neutrino_core::cluster::{Cluster, LinkProfile};
use neutrino_core::UePopConfig;
use neutrino_geo::RegionLayout;

fn run(config: SystemConfig) {
    let name = config.name;
    let ue = UeId::new(0);
    let victim =
        neutrino_core::experiment::primary_cpf_for(&config, RegionLayout::default(), ue).unwrap();

    let arrivals: Vec<Arrival> = (0..30u64)
        .map(|u| Arrival {
            at: Instant::from_micros(u * 300),
            ue: UeId::new(u),
            kind: ProcedureKind::InitialAttach,
        })
        .collect();
    let mut cluster = Cluster::build(
        config,
        RegionLayout::default(),
        Workload::from_vec(arrivals),
        UePopConfig::default(),
        LinkProfile::default(),
    );

    // (1) UE attaches; (2) it goes idle; (3) its CPF fails before anyone
    // notices; (4) a call comes in, retried every 50 ms by the caller.
    cluster.run_until(Instant::from_millis(100));
    cluster.release_ue_to_idle(ue);
    cluster.fail_cpf_at(Instant::from_millis(120), victim);
    for k in 0..40u64 {
        cluster.inject_downlink_data_at(Instant::from_millis(150 + k * 50), ue);
    }
    cluster.run_until(Instant::from_secs(30));

    let first_delivery = cluster
        .downlink_log()
        .iter()
        .find(|(_, u, ok)| *u == ue && *ok)
        .map(|(t, _, _)| *t);
    let results = cluster.take_results();
    println!("=== {name} ===");
    println!("  UE attached, went idle, then {victim} crashed at t=120ms");
    println!("  downlink data first arrived at t=150ms, retried every 50ms");
    match first_delivery {
        Some(t) => println!(
            "  -> delivered at t={:.1}ms ({} pages sent, {} re-attaches)",
            t.as_millis_f64(),
            results.paged,
            results.re_attached
        ),
        None => println!("  -> NEVER delivered (the §3.1 disruption)"),
    }
    println!();
}

fn main() {
    println!("Figure 2 (§3.1): downlink reachability after a CPF failure\n");
    run(SystemConfig::neutrino());
    run(SystemConfig::existing_epc());
    println!("Neutrino's backup already holds the UE state (per-procedure");
    println!("checkpoint), so it pages the UE immediately; the EPC must wake");
    println!("the UE through a full re-attach before the call can connect.");
}
