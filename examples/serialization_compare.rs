//! Compares all seven wire formats on the real S1AP message set: encode +
//! native-read times and encoded sizes (the §4.4 / Fig. 18–20 story).
//!
//! ```text
//! cargo run --example serialization_compare --release
//! ```

use neutrino::codec::calibrate::{measure, CalibrationOptions};
use neutrino::codec::CodecKind;
use neutrino::messages::MessageKind;

fn main() {
    let messages = [
        MessageKind::InitialUeMessage,
        MessageKind::InitialContextSetupRequest,
        MessageKind::InitialContextSetupResponse,
        MessageKind::ERabSetupRequest,
        MessageKind::ERabSetupResponse,
        MessageKind::ServiceRequest,
        MessageKind::Paging,
    ];
    let opts = CalibrationOptions {
        iters_per_batch: 800,
        batches: 5,
        warmup_iters: 200,
    };
    for kind in messages {
        let schema = kind.schema();
        let value = kind.sample(7).to_value();
        println!("\n{kind}:");
        println!(
            "  {:<14} {:>12} {:>12} {:>10}",
            "codec", "encode", "read", "size"
        );
        for codec_kind in CodecKind::ALL {
            let codec = codec_kind.instance();
            if !codec.supports(&schema) {
                println!(
                    "  {:<14} {:>36}",
                    codec_kind.name(),
                    "(cannot express this message)"
                );
                continue;
            }
            let c = measure(codec.as_ref(), &schema, &value, opts).expect("measure");
            println!(
                "  {:<14} {:>10}ns {:>10}ns {:>8}B",
                codec_kind.name(),
                c.encode.as_nanos(),
                c.access.as_nanos(),
                c.wire_bytes
            );
        }
    }
    println!();
    println!("ASN.1 PER is the smallest and slowest; fastbuf trades bytes for speed;");
    println!("the svtable optimization (fastbuf-opt) claws back union metadata (§4.4).");
}
