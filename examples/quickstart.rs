//! Quickstart: simulate Neutrino next to the existing EPC and print
//! procedure completion times.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use neutrino::prelude::*;

fn main() {
    // 2 000 UEs attach, then each issues a service request — uniform rate.
    let build_workload = || {
        let mut v = Vec::new();
        for u in 0..2_000u64 {
            v.push(Arrival {
                at: Instant::from_micros(u * 100),
                ue: UeId::new(u),
                kind: ProcedureKind::InitialAttach,
            });
            v.push(Arrival {
                at: Instant::from_micros(u * 100 + 400_000),
                ue: UeId::new(u),
                kind: ProcedureKind::ServiceRequest,
            });
        }
        Workload::from_vec(v)
    };

    println!("system       procedure         p50        p95      completed");
    println!("--------------------------------------------------------------");
    for config in [SystemConfig::existing_epc(), SystemConfig::neutrino()] {
        let name = config.name;
        let spec = ExperimentSpec::new(config, build_workload());
        let mut results = run_experiment(spec);
        for kind in [ProcedureKind::InitialAttach, ProcedureKind::ServiceRequest] {
            let s = results.summary(kind);
            println!(
                "{name:<12} {:<16} {:>7.3}ms  {:>7.3}ms  {:>8}",
                kind.name(),
                s.p50,
                s.p95,
                s.count
            );
        }
    }
    println!();
    println!("Neutrino's gap over the EPC grows with load — run the full");
    println!("figure sweep with: cargo run -p neutrino-bench --bin repro --release -- all");
}
